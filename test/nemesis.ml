(* Nemesis: a deterministic chaos harness.

   A seeded schedule of crashes, recoveries and partitions is interleaved
   with client workloads, then the run is checked against the system's
   robustness invariants:

   - no settled acknowledged write is ever lost: once a write is acked and
     replication has quiesced, every later successful read returns that
     value or a newer attempted one;
   - every successful read returns a value some client actually wrote
     (no zero pages, no interleaved garbage);
   - after the final heal the replica floor ([min_replicas]) of every
     region is restored within bounded simulated time by the repair loop;
   - the system quiesces: settles return and a final fault-free round of
     reads succeeds from every node;
   - network accounting stays conserved (sent = delivered + dropped +
     in-flight) across every fault;
   - the whole run is reproducible: same seed, same final state, same
     simulated clock.

   On top of the bespoke invariants, every sweep records an operation
   history (Kcheck.History) through the client layer and hands the
   verdict to the consistency checkers: per-address linearizability
   (Wing–Gong) and strict serializability of the transaction set
   (observed-version conflict graph). The combined sweep goes further
   and fires partitions, crashes, disk faults and frame-level
   drop/duplicate/delay in ONE seeded schedule — there the checker
   verdict *is* the invariant.

   Everything — fault times, victims, partitions, workload targets — flows
   from the seed, so a failing seed replays exactly. Seeds come from
   NEMESIS_SEEDS (comma-separated) or default to 1..5; a failing sweep
   case prints the exact environment + command line that replays it. *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr
module Disk_fault = Kstorage.Disk_fault
module Store = Kstorage.Page_store
module Gaddr = Kutil.Gaddr
module Ctypes = Kconsistency.Types
module History = Kcheck.History
module Check = Kcheck.Check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "daemon error: %s" (Daemon.error_to_string e)

let bytes_s = Bytes.of_string

(* ---------------------- History instrumentation ---------------------- *)

(* One recorder per client, all funnelled into one in-memory ring, stamped
   with the simulated clock. Every read_bytes / write_bytes / txn the
   workload issues from here on is part of the recorded history. *)
let instrument sys clients =
  let ring = History.Ring.create () in
  Array.iteri
    (fun n c ->
      Client.set_history c
        (Some
           (History.recorder
              ~now:(fun () -> System.now sys)
              ~proc:n
              (History.Ring.sink ring))))
    clients;
  ring

(* Regions in these schedules are zero-filled at creation and carry 8-byte
   stamped values, so an 8-byte read that races the first write may
   legitimately observe zeroes. *)
let zero_init _ = String.make 8 '\000'

(* Run both checkers over the recorded history; on failure the summary
   already contains the minimized counterexample. *)
let assert_history_ok ~what ring =
  let events = History.assemble (History.Ring.entries ring) in
  let report = Check.analyze ~init:zero_init events in
  if not (Check.passed report) then
    Alcotest.failf "%s: %s" what (Check.summary report);
  events

(* A sweep failure must be reproducible from the terminal without reading
   harness code: print the env var + command line that replays exactly
   this seed of exactly this schedule, then re-raise. *)
let with_repro ~group ~env ~seed f () =
  try f ()
  with e ->
    Printf.eprintf
      "\nnemesis: schedule %S seed %d FAILED — repro:\n  %s=%d dune exec \
       test/nemesis.exe -- test %S\n\n%!"
      group seed env seed group;
    raise e

(* Post-heal reads retried across a few suspicion/repair cycles: the value
   must settle, and mixed states must never be observable. The one shared
   settle-read helper — every schedule's validation reads go through it,
   so instrumented clients record them as part of the history. *)
let read_settled ?(len = 5) ?(retries = 8) sys c ~addr =
  let rec go k =
    let r =
      System.run_fiber ~name:"settled-read" sys (fun () ->
          Client.read_bytes c ~addr len)
    in
    match r with
    | Ok b -> Bytes.to_string b
    | Error _ when k > 0 ->
      System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
      go (k - 1)
    | Error e ->
      Alcotest.failf "region unreadable after heal: %s"
        (Daemon.error_to_string e)
  in
  go retries
let node_count = 6
let victims = [ 1; 2; 3; 4; 5 ] (* node 0: bootstrap + manager, never faulted *)
let region_count = 5
let rounds = 9

(* One tracked region: every value ever attempted (value -> attempt index)
   plus the index of the last write known to be both acked and settled. *)
type reg = {
  r : Region.t;
  minr : int;
  home : int;
  attempts : (string, int) Hashtbl.t;
  mutable n_attempts : int;
  mutable last_settled : int;
}

type st = {
  mutable down : int list;
  mutable partitioned : bool;
  mutable faulty : int list;  (* nodes with an active disk fault model *)
}

(* Disk-fault runs shrink RAM so the workload actually reaches the disk
   tier (demotions, promotions, injected crash points inside disk I/O) and
   checkpoint the WAL often enough to exercise truncation mid-run. *)
let mk ?(small_ram = false) ~seed () =
  let config =
    if small_ram then
      Some
        {
          Daemon.default_config with
          Daemon.ram_pages = 8;
          disk_pages = 128;
          wal_checkpoint_every = 64;
        }
    else None
  in
  System.create ?config ~seed ~nodes_per_cluster:node_count ~clusters:1 ()

(* Which disk pathology a sweep seed exercises is a function of the seed,
   so the seed list controls coverage: lost unsynced writes, torn images,
   and crashes fired from inside the disk-latency window. *)
let fault_profile seed =
  match seed mod 3 with
  | 0 ->
    { Disk_fault.lost_write_prob = 0.5; torn_write_prob = 0.0;
      crash_during_io_prob = 0.0 }
  | 1 ->
    { Disk_fault.lost_write_prob = 0.3; torn_write_prob = 0.6;
      crash_during_io_prob = 0.0 }
  | _ ->
    { Disk_fault.lost_write_prob = 0.3; torn_write_prob = 0.3;
      crash_during_io_prob = 0.01 }

let fault_profile_name seed =
  match seed mod 3 with
  | 0 -> "lost writes"
  | 1 -> "torn writes"
  | _ -> "crash mid-flush"

(* Injected I/O crash points take nodes down outside the schedule's view:
   refresh the down-list from ground truth before acting on it. A node in
   its recovery phase counts as down (it is not serving yet). *)
let resync_down sys st =
  st.down <-
    List.filter (fun n -> not (Daemon.is_up (System.daemon sys n))) victims

let fresh_value rg =
  let idx = rg.n_attempts in
  rg.n_attempts <- idx + 1;
  let v = Printf.sprintf "%02d%06d" rg.home idx in
  Hashtbl.replace rg.attempts v idx;
  (v, idx)

let count_holders sys rg =
  List.length
    (List.filter
       (fun n -> Daemon.holds_page (System.daemon sys n) rg.r.Region.base)
       (List.init node_count Fun.id))

let up_nodes st = List.filter (fun n -> not (List.mem n st.down)) (0 :: victims)

let pick rng l =
  match l with
  | [] -> None
  | l -> Some (List.nth l (Kutil.Rng.int rng (List.length l)))

(* ----------------------- Fault schedule ----------------------------- *)

let fault_step ?profile rng sys st =
  (* Disk-fault arm: flip the fault model on and off on random victims.
     Rng draws happen only when a profile is given, so plain schedules
     consume exactly the same stream as before. *)
  (match profile with
  | None -> ()
  | Some p ->
    (match
       pick rng (List.filter (fun n -> not (List.mem n st.faulty)) victims)
     with
    | Some n when Kutil.Rng.bool rng ->
      System.set_disk_faults sys n p;
      st.faulty <- n :: st.faulty
    | Some _ | None -> ());
    (match pick rng st.faulty with
    | Some n when Kutil.Rng.float rng 1.0 < 0.3 ->
      System.set_disk_faults sys n Disk_fault.none;
      st.faulty <- List.filter (fun m -> m <> n) st.faulty
    | Some _ | None -> ()));
  let crash () =
    match pick rng (List.filter (fun n -> not (List.mem n st.down)) victims) with
    | Some n ->
      System.crash sys n;
      st.down <- n :: st.down
    | None -> ()
  in
  let recover () =
    match pick rng st.down with
    | Some n ->
      System.recover sys n;
      st.down <- List.filter (fun m -> m <> n) st.down
    | None -> ()
  in
  let partition () =
    let arr = Array.of_list victims in
    Kutil.Rng.shuffle rng arr;
    let k = 1 + Kutil.Rng.int rng 2 in
    let minority = Array.to_list (Array.sub arr 0 k) in
    let majority =
      0 :: Array.to_list (Array.sub arr k (Array.length arr - k))
    in
    System.partition sys minority majority;
    st.partitioned <- true
  in
  let heal () =
    System.heal sys;
    st.partitioned <- false
  in
  if st.partitioned && Kutil.Rng.bool rng then heal ()
  else if List.length st.down >= 2 then recover ()
  else
    match Kutil.Rng.int rng 5 with
    | 0 -> crash ()
    | 1 -> if st.partitioned then heal () else partition ()
    | 2 -> if st.down = [] then crash () else recover ()
    | 3 when st.down <> [] -> recover ()
    | _ -> () (* quiet round *)

(* ------------------------- Workload ---------------------------------- *)

(* One write + one read per region, issued from random live nodes. Faulted
   rounds tolerate failures; a *successful* read must still return a value
   somebody actually wrote. *)
let workload_round rng sys st clients regs =
  List.iter
    (fun rg ->
      let writer = Option.get (pick rng (up_nodes st)) in
      let reader = Option.get (pick rng (up_nodes st)) in
      System.run_fiber ~name:"nemesis-workload" sys (fun () ->
          let v, _ = fresh_value rg in
          (match
             Client.write_bytes clients.(writer) ~addr:rg.r.Region.base
               (bytes_s v)
           with
          | Ok () | Error _ -> ());
          match Client.read_bytes clients.(reader) ~addr:rg.r.Region.base 8 with
          | Error _ -> ()
          | Ok b ->
            let got = Bytes.to_string b in
            if not (Hashtbl.mem rg.attempts got) then
              Alcotest.failf
                "read of region %02d returned %S: never written by anyone"
                rg.home got))
    regs

(* Recover everything, settle, then land one write per region that must be
   acked — once replication settles it becomes the durability watermark. *)
let checkpoint sys st clients regs =
  (* The watermark write must land on honest disks: stop fault injection
     and pick up any nodes an injected I/O crash took down behind our
     back before healing everything. *)
  List.iter (fun n -> System.set_disk_faults sys n Disk_fault.none) st.faulty;
  st.faulty <- [];
  resync_down sys st;
  List.iter (fun n -> System.recover sys n) st.down;
  st.down <- [];
  if st.partitioned then begin
    System.heal sys;
    st.partitioned <- false
  end;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  (* A fully healed system must accept a write within a bounded number of
     lock rounds — fail-over of state stranded on a crashed-and-reborn
     owner can take a couple of suspicion/repair cycles, but not forever. *)
  let acked =
    List.map
      (fun rg ->
        let rec attempt k =
          let r =
            System.run_fiber ~name:"nemesis-checkpoint" sys (fun () ->
                let v, idx = fresh_value rg in
                match
                  Client.write_bytes clients.(rg.home) ~addr:rg.r.Region.base
                    (bytes_s v)
                with
                | Ok () -> Ok (rg, idx)
                | Error e -> Error e)
          in
          match r with
          | Ok x -> x
          | Error e when k > 1 ->
            System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
            ignore e;
            attempt (k - 1)
          | Error e ->
            Alcotest.failf
              "healed system refused checkpoint write for region %02d: %s"
              rg.home
              (Daemon.error_to_string e)
        in
        attempt 4)
      regs
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
  List.iter (fun (rg, idx) -> rg.last_settled <- idx) acked

(* Repair must bring every region back to its floor within bounded
   simulated time of the final heal. *)
let wait_replica_floor sys regs ~cap =
  let t0 = System.now sys in
  let deficient () =
    List.filter (fun rg -> rg.minr > 1 && count_holders sys rg < rg.minr) regs
  in
  while deficient () <> [] && System.now sys - t0 < cap do
    System.run_until_quiet ~limit:(Ksim.Time.ms 500) sys
  done;
  match deficient () with
  | [] -> ()
  | l ->
    Alcotest.failf
      "replica floor not restored within %dms for %d region(s): %s"
      (cap / 1_000_000) (List.length l)
      (String.concat ", "
         (List.map
            (fun rg ->
              Printf.sprintf "home %d (%d/%d holders)" rg.home
                (count_holders sys rg) rg.minr)
            l))

(* --------------------------- One run --------------------------------- *)

let run_nemesis ?(disk = false) ~seed () =
  let sys = mk ~small_ram:disk ~seed () in
  let profile = if disk then Some (fault_profile seed) else None in
  let rng = Kutil.Rng.create ~seed:(0x6e65 + (seed * 7919)) in
  let clients =
    Array.init node_count (fun n -> System.client sys n ())
  in
  let ring = instrument sys clients in
  let st = { down = []; partitioned = false; faulty = [] } in
  let regs =
    List.map
      (fun i ->
        let home = 1 + (i mod 5) in
        let minr = if i mod 2 = 0 then 2 else 3 in
        let r =
          System.run_fiber ~name:"nemesis-create" sys (fun () ->
              let attr = Attr.make ~owner:home ~min_replicas:minr () in
              ok (Client.create_region clients.(home) ~attr 4096))
        in
        {
          r;
          minr;
          home;
          attempts = Hashtbl.create 32;
          n_attempts = 0;
          last_settled = -1;
        })
      (List.init region_count Fun.id)
  in
  (* Round 0: a settled write everywhere before the first fault. *)
  checkpoint sys st clients regs;
  for round = 1 to rounds do
    resync_down sys st;
    fault_step ?profile rng sys st;
    workload_round rng sys st clients regs;
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    if round mod 3 = 0 then checkpoint sys st clients regs
  done;
  (* Final heal + the bounded-time repair guarantee. *)
  List.iter (fun n -> System.set_disk_faults sys n Disk_fault.none) st.faulty;
  st.faulty <- [];
  resync_down sys st;
  List.iter (fun n -> System.recover sys n) st.down;
  st.down <- [];
  if st.partitioned then begin
    System.heal sys;
    st.partitioned <- false
  end;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  wait_replica_floor sys regs ~cap:(Ksim.Time.sec 20);
  (* Durability: from every node, every region reads back a value at least
     as new as its last settled acknowledged write. *)
  let finals =
    List.map
      (fun rg ->
        let v =
          System.run_fiber ~name:"nemesis-final-read" sys (fun () ->
              Bytes.to_string
                (ok (Client.read_bytes clients.(0) ~addr:rg.r.Region.base 8)))
        in
        (match Hashtbl.find_opt rg.attempts v with
        | None ->
          Alcotest.failf "final read of region %02d got unwritten value %S"
            rg.home v
        | Some idx ->
          if idx < rg.last_settled then
            Alcotest.failf
              "region %02d lost settled write: read attempt %d, settled %d"
              rg.home idx rg.last_settled);
        (* A second vantage must agree with the durability watermark too. *)
        System.run_fiber ~name:"nemesis-vantage" sys (fun () ->
            let v' =
              Bytes.to_string
                (ok (Client.read_bytes clients.(3) ~addr:rg.r.Region.base 8))
            in
            match Hashtbl.find_opt rg.attempts v' with
            | Some idx' when idx' >= rg.last_settled -> ()
            | _ ->
              Alcotest.failf "vantage read of region %02d regressed to %S"
                rg.home v');
        v)
      regs
  in
  (* Network accounting survived the whole schedule. *)
  let s = Khazana.Wire.Sim.Net.stats (System.net sys) in
  if s.sent <> s.delivered + s.dropped + s.in_flight then
    Alcotest.failf "network accounting leak: sent %d <> %d + %d + %d" s.sent
      s.delivered s.dropped s.in_flight;
  (* Checker verdict over the full recorded history: every region must be
     explainable as a linearizable register under the whole schedule. *)
  ignore
    (assert_history_ok
       ~what:(Printf.sprintf "%s sweep seed %d" (if disk then "disk" else "chaos") seed)
       ring);
  String.concat ";" finals ^ Printf.sprintf "@%d" (System.now sys)

(* ----------------------- Directed scenarios -------------------------- *)

(* The headline repair guarantee, in isolation: crash a replica holder and
   watch the region climb back to its floor without any client activity. *)
let test_floor_restored_after_holder_crash () =
  let sys = mk ~seed:11 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:3 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "precious")) ;
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let holders () =
    List.filter
      (fun n -> Daemon.holds_page (System.daemon sys n) region.Region.base)
      (List.init node_count Fun.id)
  in
  let victim =
    match List.filter (fun n -> n <> 0 && n <> 1) (holders ()) with
    | v :: _ -> v
    | [] -> Alcotest.fail "no replica outside home and manager"
  in
  Alcotest.(check bool) "floor met before crash" true
    (List.length (holders ()) >= 3);
  System.crash sys victim;
  (* Bounded: suspicion (1.5 s) + a few repair passes (500 ms each). *)
  let t0 = System.now sys in
  let cap = Ksim.Time.sec 15 in
  while List.length (holders ()) < 3 && System.now sys - t0 < cap do
    System.run_until_quiet ~limit:(Ksim.Time.ms 500) sys
  done;
  Alcotest.(check bool)
    (Printf.sprintf "floor restored in %dms (holders: %d)"
       ((System.now sys - t0) / 1_000_000)
       (List.length (holders ())))
    true
    (List.length (holders ()) >= 3);
  (* And the repair targets got real data, not zero pages. *)
  let reader =
    match List.filter (fun n -> n <> 1 && n <> victim) (holders ()) with
    | n :: _ -> n
    | [] -> Alcotest.fail "no surviving replica"
  in
  let cr = System.client sys reader () in
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes cr ~addr:region.Region.base 8) in
      Alcotest.(check string) "repaired replica has the data" "precious"
        (Bytes.to_string b))

(* CREW's single-writer guarantee under concurrency: two racing writers,
   the final value is exactly one of theirs. *)
let test_concurrent_writers_single_winner () =
  let sys = mk ~seed:5 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:2 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "original"));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 1) sys;
  let c2 = System.client sys 2 () in
  let c3 = System.client sys 3 () in
  let acked = ref [] in
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      match Client.write_bytes c2 ~addr:region.Region.base (bytes_s "AAAAAAAA") with
      | Ok () -> acked := "AAAAAAAA" :: !acked
      | Error _ -> ());
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      match Client.write_bytes c3 ~addr:region.Region.base (bytes_s "BBBBBBBB") with
      | Ok () -> acked := "BBBBBBBB" :: !acked
      | Error _ -> ());
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  Alcotest.(check bool) "both writers eventually acked" true
    (List.length !acked = 2);
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let b = Bytes.to_string (ok (Client.read_bytes c4 ~addr:region.Region.base 8)) in
      Alcotest.(check bool)
        (Printf.sprintf "final value is one writer's (%S)" b)
        true
        (b = "AAAAAAAA" || b = "BBBBBBBB"))

(* An acked write whose disk image is destroyed by the crash (rolled back
   and torn) must come back from the intent log alone: min_replicas = 1, so
   no peer holds a copy to repair from. *)
let test_torn_write_recovered_from_wal () =
  let sys = mk ~seed:23 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:1 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "original"));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  System.set_disk_faults sys 1
    {
      Disk_fault.lost_write_prob = 1.0;
      torn_write_prob = 1.0;
      crash_during_io_prob = 0.0;
    };
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c1 ~addr:region.Region.base (bytes_s "walsaved")));
  System.crash sys 1;
  let d1 = System.daemon sys 1 in
  Alcotest.(check bool) "crash left a torn image behind" true
    ((Store.stats (Daemon.store d1)).torn_writes >= 1);
  System.set_disk_faults sys 1 Disk_fault.none;
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check bool) "node recovered" true (Daemon.is_up d1);
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c1 ~addr:region.Region.base 8) in
      Alcotest.(check string) "committed write replayed from the log"
        "walsaved" (Bytes.to_string b))

(* The acceptance shape: a crash point injected inside the disk-latency
   window takes the daemon down mid-operation; after WAL replay every
   committed write is readable again from the reborn home. *)
let test_crash_mid_io_recovers_committed_writes () =
  let sys = mk ~small_ram:true ~seed:31 () in
  let c2 = System.client sys 2 () in
  let pages = 12 in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:2 ~min_replicas:1 () in
        ok (Client.create_region c2 ~attr (pages * 4096)))
  in
  let addr i = Gaddr.add_int region.Region.base (i * 4096) in
  let value i = Printf.sprintf "v%06d!" i in
  System.run_fiber sys (fun () ->
      for i = 0 to pages - 1 do
        ok (Client.write_bytes c2 ~addr:(addr i) (bytes_s (value i)))
      done);
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  (* Every disk I/O on node 2 now schedules a crash inside its latency
     window. With 8 RAM frames, sweeping the region promotes pages back
     off disk, so the node must die mid-read. *)
  System.set_disk_faults sys 2
    {
      Disk_fault.lost_write_prob = 0.5;
      torn_write_prob = 0.5;
      crash_during_io_prob = 1.0;
    };
  System.run_fiber sys (fun () ->
      for i = 0 to pages - 1 do
        ignore (Client.read_bytes c2 ~addr:(addr i) 8)
      done);
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let d2 = System.daemon sys 2 in
  Alcotest.(check bool) "injected crash point fired" false (Daemon.is_up d2);
  System.set_disk_faults sys 2 Disk_fault.none;
  System.recover sys 2;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check bool) "node recovered" true (Daemon.is_up d2);
  System.run_fiber sys (fun () ->
      for i = 0 to pages - 1 do
        let b = ok (Client.read_bytes c2 ~addr:(addr i) 8) in
        Alcotest.(check string)
          (Printf.sprintf "page %d readable after mid-I/O crash" i)
          (value i) (Bytes.to_string b)
      done)

(* The home dies in the middle of a pipelined multi-page acquisition: some
   of the contender's acquire wave has been granted, the rest never will
   be. The failed lock must roll its partial grants back without leaking
   storage pins, and once the home recovers, the same whole-region lock
   must go through cleanly. *)
let test_crash_mid_batched_acquire () =
  let sys = mk ~seed:77 () in
  let c1 = System.client sys 1 () in
  let pages = 16 in
  let len = pages * 4096 in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:1 () in
        let r = ok (Client.create_region c1 ~attr (pages * 4096)) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make len 'x'));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let c2 = System.client sys 2 () in
  let outcome = ref None in
  System.run_fiber sys (fun () ->
      let locker =
        Ksim.Fiber.async (System.engine sys) (fun () ->
            let ctx =
              Ktrace.Op_ctx.make
                ~deadline:(System.now sys + Ksim.Time.sec 4) 2
            in
            Client.lock c2 ~ctx ~addr:region.Region.base ~len Ctypes.Write)
      in
      (* Mid-wave: the acquire fan-out is in flight, grants only partly
         delivered. *)
      Ksim.Fiber.sleep (Ksim.Time.us 400);
      System.crash sys 1;
      outcome := Some (Ksim.Fiber.await locker));
  System.run_until_quiet ~limit:(Ksim.Time.sec 8) sys;
  (match !outcome with
   | Some (Ok _) -> Alcotest.fail "lock cannot complete: home died mid-wave"
   | Some (Error _) -> ()
   | None -> Alcotest.fail "locker never finished");
  Alcotest.(check int) "no pins leaked by the aborted lock" 0
    (Store.pinned_pages (Daemon.store (System.daemon sys 2)));
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  System.run_fiber sys (fun () ->
      let full = ok (Client.lock c2 ~addr:region.Region.base ~len Ctypes.Write) in
      ok (Client.write c2 full ~addr:region.Region.base (bytes_s "after-crash"));
      Client.unlock c2 full;
      let b = ok (Client.read_bytes c2 ~addr:region.Region.base 11) in
      Alcotest.(check string) "region usable after recovery" "after-crash"
        (Bytes.to_string b))

(* Regression: a crash that tears the WAL frontier record must not poison
   the log for writes committed after recovery. Replay stops at the first
   checksum-failing record, so if recovery left the torn record in place,
   every post-recovery commit would be silently discarded by the next
   replay. Recovery must end with a truncating checkpoint instead. *)
let test_post_recovery_commits_survive_second_crash () =
  let sys = mk ~seed:23 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:1 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "original"));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  System.set_disk_faults sys 1
    {
      Disk_fault.lost_write_prob = 1.0;
      torn_write_prob = 1.0;
      crash_during_io_prob = 0.0;
    };
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c1 ~addr:region.Region.base (bytes_s "walsaved")));
  (* Commit syncs the log, so give the crash an unsynced tail to tear: a
     hint-grade record of the same class as the daemon's own pdir.ensure
     notes (recovery skips the unknown tag). *)
  let d1 = System.daemon sys 1 in
  Kstorage.Wal.control (Daemon.wal d1) ~sync:false "test.hint" (bytes_s "x");
  System.crash sys 1;
  Alcotest.(check bool) "first crash left a torn WAL frontier" true
    ((Kstorage.Wal.stats (Daemon.wal d1)).Kstorage.Wal.torn_tail >= 1);
  System.set_disk_faults sys 1 Disk_fault.none;
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check bool) "node recovered" true (Daemon.is_up d1);
  (* Commit a fresh write, then destroy its (unsynced) disk flush with a
     second crash: only the intent log can bring it back. *)
  System.set_disk_faults sys 1
    {
      Disk_fault.lost_write_prob = 1.0;
      torn_write_prob = 0.0;
      crash_during_io_prob = 0.0;
    };
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c1 ~addr:region.Region.base (bytes_s "afterlog")));
  System.crash sys 1;
  System.set_disk_faults sys 1 Disk_fault.none;
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check bool) "node recovered again" true (Daemon.is_up d1);
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c1 ~addr:region.Region.base 8) in
      Alcotest.(check string)
        "write committed after the torn-tail recovery survives a second crash"
        "afterlog" (Bytes.to_string b))

(* ------------------- 2PC crash-at-every-step ------------------------- *)

(* Two regions homed at different nodes, a coordinator on a third: the
   minimal shape where atomic commit is actually distributed. The nemesis
   kills the coordinator or a participant at a named protocol step (fired
   from inside the daemon's txn hook), heals everything, and checks the
   all-or-nothing invariant: both regions read the old value or both read
   the new one — and an acknowledged commit is never lost. *)

let txn_write_both c txn a b va vb =
  match Client.txn_write c txn ~addr:a (bytes_s va) with
  | Error _ as e -> e
  | Ok () -> Client.txn_write c txn ~addr:b (bytes_s vb)

let run_2pc_crash ~victim ~step ~nth () =
  let sys = mk ~seed:(97 + Hashtbl.hash (victim, step, nth) mod 1000) () in
  let c1 = System.client sys 1 () in
  let c2 = System.client sys 2 () in
  let a, b =
    System.run_fiber sys (fun () ->
        let ra = ok (Client.create_region c1 4096) in
        let rb = ok (Client.create_region c2 4096) in
        ok (Client.write_bytes c1 ~addr:ra.Region.base (bytes_s "old-a"));
        ok (Client.write_bytes c2 ~addr:rb.Region.base (bytes_s "old-b"));
        (ra.Region.base, rb.Region.base))
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let d = System.daemon sys victim in
  let fired = ref 0 in
  Daemon.set_txn_hook d
    (Some
       (fun s ->
         if s = step then begin
           incr fired;
           if !fired = nth then System.crash sys victim
         end));
  let c3 = System.client sys 3 () in
  let outcome =
    System.run_fiber ~name:"2pc-txn" sys (fun () ->
        Client.txn c3 (fun txn -> txn_write_both c3 txn a b "new-a" "new-b"))
  in
  Daemon.set_txn_hook d None;
  Alcotest.(check bool)
    (Printf.sprintf "crash hook at %s fired" step)
    true (!fired >= nth);
  (* Heal: recover the victim, drain recovery, resolver and rebroadcast
     (resolver nag needs txn_resolve_after = 3 s of quiet). *)
  System.recover sys victim;
  System.run_until_quiet ~limit:(Ksim.Time.sec 40) sys;
  let c4 = System.client sys 4 () in
  let va = read_settled sys c4 ~addr:a in
  let vb = read_settled sys c4 ~addr:b in
  (match (va, vb) with
   | "old-a", "old-b" | "new-a", "new-b" -> ()
   | _ ->
     Alcotest.failf "partial transaction visible at %s: a=%S b=%S" step va vb);
  (match outcome with
   | Ok () ->
     (* An acknowledged commit is durable, whatever died afterwards. *)
     Alcotest.(check string) "acked commit survives (a)" "new-a" va;
     Alcotest.(check string) "acked commit survives (b)" "new-b" vb
   | Error (`Conflict _) ->
     (* A reported abort means nothing ever became visible. *)
     Alcotest.(check string) "abort left a untouched" "old-a" va;
     Alcotest.(check string) "abort left b untouched" "old-b" vb
   | Error (`Unavailable _ | `Timeout) ->
     (* Crash mid-protocol: indeterminate at the client, but still atomic
        (checked above). *)
     ()
   | Error e ->
     Alcotest.failf "unexpected txn error: %s" (Daemon.error_to_string e));
  (* Nobody is left in doubt... *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "node %d limbo drained after %s" n step)
        0
        (Daemon.txn_prepared_count (System.daemon sys n)))
    [ 1; 2; 3 ];
  (* ...and the system still commits fresh transactions. *)
  let c5 = System.client sys 5 () in
  let rec follow_up k =
    let r =
      System.run_fiber ~name:"2pc-follow-up" sys (fun () ->
          Client.txn c5 (fun txn -> txn_write_both c5 txn a b "fin-a" "fin-b"))
    in
    match r with
    | Ok () -> ()
    | Error _ when k > 0 ->
      System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
      follow_up (k - 1)
    | Error e ->
      Alcotest.failf "follow-up txn refused after %s: %s" step
        (Daemon.error_to_string e)
  in
  follow_up 5;
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check string) "follow-up committed (a)" "fin-a"
    (read_settled sys c4 ~addr:a);
  Alcotest.(check string) "follow-up committed (b)" "fin-b"
    (read_settled sys c4 ~addr:b)

(* Coordinator steps: nth picks the occurrence, so prepare_ack 1 is "after
   the first vote arrives" and decide_send 2 is "mid decision broadcast". *)
let coord_steps =
  [ ("coord.before_prepare", 1); ("coord.prepare_ack", 1);
    ("coord.all_acked", 1); ("coord.decision_logged", 1);
    ("coord.decide_send", 2) ]

let participant_steps =
  [ ("part.prepare_recv", 1); ("part.prepared", 1);
    ("part.decide_recv", 1); ("part.decided", 1) ]

(* A partition during the voting phase: participant 1 unreachable, the
   prepare times out, the transaction aborts — and nothing is visible. *)
let test_2pc_partition_during_prepare () =
  let sys = mk ~seed:131 () in
  let c1 = System.client sys 1 () in
  let c2 = System.client sys 2 () in
  let a, b =
    System.run_fiber sys (fun () ->
        let ra = ok (Client.create_region c1 4096) in
        let rb = ok (Client.create_region c2 4096) in
        ok (Client.write_bytes c1 ~addr:ra.Region.base (bytes_s "old-a"));
        ok (Client.write_bytes c2 ~addr:rb.Region.base (bytes_s "old-b"));
        (ra.Region.base, rb.Region.base))
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let d3 = System.daemon sys 3 in
  Daemon.set_txn_hook d3
    (Some
       (fun s ->
         if s = "coord.before_prepare" then
           System.partition sys [ 1 ] [ 0; 2; 3; 4; 5 ]));
  let c3 = System.client sys 3 () in
  let outcome =
    System.run_fiber ~name:"2pc-partition-txn" sys (fun () ->
        Client.txn c3 (fun txn -> txn_write_both c3 txn a b "new-a" "new-b"))
  in
  Daemon.set_txn_hook d3 None;
  (match outcome with
   | Error (`Conflict _) -> ()
   | Ok () -> Alcotest.fail "commit with a participant unreachable"
   | Error e ->
     Alcotest.failf "expected vote-timeout abort, got %s"
       (Daemon.error_to_string e));
  System.heal sys;
  System.run_until_quiet ~limit:(Ksim.Time.sec 40) sys;
  let c4 = System.client sys 4 () in
  Alcotest.(check string) "a untouched" "old-a" (read_settled sys c4 ~addr:a);
  Alcotest.(check string) "b untouched" "old-b" (read_settled sys c4 ~addr:b);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "node %d limbo drained" n)
        0
        (Daemon.txn_prepared_count (System.daemon sys n)))
    [ 1; 2; 3 ]

(* kfs rename rides Client.txn: crash the renaming node at each
   coordinator step; afterwards exactly one of the two names exists. *)
let run_kfs_rename_crash ~step () =
  let sys = mk ~seed:(211 + Hashtbl.hash step mod 500) () in
  let fs_ok = function
    | Ok v -> v
    | Error e -> Alcotest.failf "kfs: %s" (Kfs.Fs.error_to_string e)
  in
  let c1 = System.client sys 1 () in
  let sb =
    System.run_fiber sys (fun () ->
        let sb = fs_ok (Kfs.Fs.format c1 ()) in
        let fs1 = fs_ok (Kfs.Fs.mount c1 sb) in
        fs_ok (Kfs.Fs.mkdir fs1 "/src");
        fs_ok (Kfs.Fs.create fs1 "/src/f");
        fs_ok (Kfs.Fs.write fs1 "/src/f" ~off:0 (bytes_s "payload"));
        sb)
  in
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let fs2 = fs_ok (Kfs.Fs.mount c2 sb) in
      fs_ok (Kfs.Fs.mkdir fs2 "/dst"));
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let d3 = System.daemon sys 3 in
  Daemon.set_txn_hook d3
    (Some (fun s -> if s = step then System.crash sys 3));
  let c3 = System.client sys 3 () in
  let outcome =
    System.run_fiber ~name:"2pc-rename" sys (fun () ->
        let fs3 = fs_ok (Kfs.Fs.mount c3 sb) in
        Kfs.Fs.rename fs3 "/src/f" "/dst/g")
  in
  Daemon.set_txn_hook d3 None;
  System.recover sys 3;
  System.run_until_quiet ~limit:(Ksim.Time.sec 40) sys;
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let fs4 = fs_ok (Kfs.Fs.mount c4 sb) in
      let at_src = Kfs.Fs.exists fs4 "/src/f" in
      let at_dst = Kfs.Fs.exists fs4 "/dst/g" in
      (match (at_src, at_dst) with
       | true, false | false, true -> ()
       | true, true ->
         Alcotest.failf "crash at %s left the file in both directories" step
       | false, false ->
         Alcotest.failf "crash at %s lost the file entirely" step);
      (match outcome with
       | Ok () ->
         Alcotest.(check bool)
           (Printf.sprintf "acked rename durable (%s)" step)
           true at_dst
       | Error _ -> ());
      let path = if at_dst then "/dst/g" else "/src/f" in
      let data = fs_ok (Kfs.Fs.read fs4 path ~off:0 ~len:7) in
      Alcotest.(check string) "content intact" "payload"
        (Bytes.to_string data))

(* ------------------------- 2PC seeded sweep -------------------------- *)

(* Rounds of cross-node transactions (one value fanned out to three
   regions homed at nodes 1, 2, 3) interleaved with seeded faults: a
   crash of the coordinator or a participant at a random protocol step,
   or a partition during voting. After every heal the three regions must
   agree with each other and be at least as new as the last acknowledged
   commit. *)
let run_2pc_nemesis ~seed () =
  let sys = mk ~seed () in
  let rng = Kutil.Rng.create ~seed:(0x2bc + (seed * 7919)) in
  let homes = [ 1; 2; 3 ] in
  let coord = 4 in
  let clients = Array.init node_count (fun n -> System.client sys n ()) in
  let ring = instrument sys clients in
  let ccoord = clients.(coord) in
  let regions =
    List.map
      (fun home ->
        let c = clients.(home) in
        let r =
          System.run_fiber ~name:"2pc-create" sys (fun () ->
              let attr = Attr.make ~owner:home () in
              let r = ok (Client.create_region c ~attr 4096) in
              ok (Client.write_bytes c ~addr:r.Region.base (bytes_s "%init%00"));
              r)
        in
        r.Region.base)
      homes
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let attempts = Hashtbl.create 32 in
  Hashtbl.replace attempts "%init%00" 0;
  let last_acked = ref 0 in
  let n_attempts = ref 0 in
  let steps = Array.of_list (List.map fst (coord_steps @ participant_steps)) in
  let txn_round () =
    incr n_attempts;
    let idx = !n_attempts in
    let v = Printf.sprintf "%08d" idx in
    Hashtbl.replace attempts v idx;
    let r =
      System.run_fiber ~name:"2pc-sweep-txn" sys (fun () ->
          Client.txn ccoord (fun txn ->
              List.fold_left
                (fun acc addr ->
                  match acc with
                  | Error _ as e -> e
                  | Ok () -> Client.txn_write ccoord txn ~addr (bytes_s v))
                (Ok ()) regions))
    in
    (match r with Ok () -> last_acked := idx | Error _ -> ());
    r
  in
  let heal_all () =
    List.iter
      (fun n ->
        if not (Daemon.is_up (System.daemon sys n)) then System.recover sys n)
      victims;
    System.heal sys;
    System.run_until_quiet ~limit:(Ksim.Time.sec 40) sys
  in
  let check_invariant round =
    let values =
      List.map
        (fun addr -> read_settled ~len:8 sys clients.(0) ~addr:(Gaddr.add_int addr 0))
        regions
    in
    (match values with
     | v :: rest when List.for_all (( = ) v) rest -> (
       match Hashtbl.find_opt attempts v with
       | None ->
         Alcotest.failf "round %d: regions hold unwritten value %S" round v
       | Some idx ->
         if idx < !last_acked then
           Alcotest.failf
             "round %d: settled commit lost (read attempt %d, acked %d)" round
             idx !last_acked)
     | values ->
       Alcotest.failf "round %d: partial transaction visible: %s" round
         (String.concat " / " values));
    List.iter
      (fun n ->
        Alcotest.(check int)
          (Printf.sprintf "round %d: node %d limbo drained" round n)
          0
          (Daemon.txn_prepared_count (System.daemon sys n)))
      (0 :: victims)
  in
  for round = 1 to 8 do
    (match Kutil.Rng.int rng 4 with
     | 0 -> ignore (txn_round ()) (* fault-free round *)
     | 1 | 2 ->
       (* Crash the coordinator or a participant at a random step. *)
       let victim, step =
         if Kutil.Rng.bool rng then
           (coord, fst (List.nth coord_steps (Kutil.Rng.int rng 5)))
         else
           ( List.nth homes (Kutil.Rng.int rng 3),
             steps.(5 + Kutil.Rng.int rng 4) )
       in
       let d = System.daemon sys victim in
       Daemon.set_txn_hook d
         (Some (fun s -> if s = step then System.crash sys victim));
       ignore (txn_round ());
       Daemon.set_txn_hook d None
     | _ ->
       (* Partition a participant away during voting. *)
       let cut = List.nth homes (Kutil.Rng.int rng 3) in
       let d = System.daemon sys coord in
       Daemon.set_txn_hook d
         (Some
            (fun s ->
              if s = "coord.before_prepare" then
                System.partition sys [ cut ]
                  (List.filter (fun n -> n <> cut) (0 :: victims))));
       ignore (txn_round ());
       Daemon.set_txn_hook d None);
    heal_all ();
    check_invariant round
  done;
  (* A final fault-free transaction must land. *)
  let rec final k =
    match txn_round () with
    | Ok () -> ()
    | Error _ when k > 0 ->
      System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
      final (k - 1)
    | Error e ->
      Alcotest.failf "healed system refused final txn: %s"
        (Daemon.error_to_string e)
  in
  final 5;
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  check_invariant 99;
  (* Accounting survived the fault schedule. *)
  let s = Khazana.Wire.Sim.Net.stats (System.net sys) in
  if s.sent <> s.delivered + s.dropped + s.in_flight then
    Alcotest.failf "network accounting leak: sent %d <> %d + %d + %d" s.sent
      s.delivered s.dropped s.in_flight;
  (* The recorded transaction history must be strictly serializable and
     every region linearizable — replaces eyeballing the ad-hoc asserts. *)
  ignore (assert_history_ok ~what:(Printf.sprintf "2pc sweep seed %d" seed) ring)

(* ---------------- Combined multi-fault schedule ----------------------- *)

(* The tentpole schedule: partitions, crashes, disk faults AND frame-level
   drop/duplicate/delay armed in ONE seeded run, over a mixed workload of
   plain reads/writes and multi-region read-modify-write transactions (the
   latter exercising the shared-read-lock upgrade path under fire). There
   is deliberately no bespoke "which value may this read return"
   bookkeeping here: the recorded history goes to the Kcheck checkers and
   their verdict is the invariant. *)

type combined = { fingerprint : string; events : History.event list }

let combined_regions = 4

let run_combined ~seed () =
  let sys = mk ~small_ram:true ~seed () in
  let profile = fault_profile seed in
  let rng = Kutil.Rng.create ~seed:(0x636d62 + (seed * 7919)) in
  let clients = Array.init node_count (fun n -> System.client sys n ()) in
  let ring = instrument sys clients in
  let st = { down = []; partitioned = false; faulty = [] } in
  (* One global stamp: every value ever attempted — plain or
     transactional — is distinct, as the serializability checker's
     observed-version graph requires. *)
  let stamp = ref 0 in
  let fresh tag =
    incr stamp;
    Printf.sprintf "%02d%06d" tag !stamp
  in
  let regs =
    List.map
      (fun i ->
        let home = 1 + i in
        let r =
          System.run_fiber ~name:"combined-create" sys (fun () ->
              let attr = Attr.make ~owner:home ~min_replicas:2 () in
              ok (Client.create_region clients.(home) ~attr 4096))
        in
        (home, r.Region.base))
      (List.init combined_regions Fun.id)
  in
  let settle_all what =
    List.iter
      (fun (home, addr) ->
        let rec attempt k =
          let r =
            System.run_fiber ~name:"combined-settle" sys (fun () ->
                Client.write_bytes clients.(home) ~addr (bytes_s (fresh home)))
          in
          match r with
          | Ok () -> ()
          | Error _ when k > 0 ->
            System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
            attempt (k - 1)
          | Error e ->
            Alcotest.failf "%s: settled write refused for home %d: %s" what
              home (Daemon.error_to_string e)
        in
        attempt 4)
      regs;
    System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys
  in
  settle_all "initial checkpoint";
  (* Frame faults arm only after setup: region creation needs the address
     map, and a dropped map-mutation frame is a test-harness timeout, not
     an interesting fault. *)
  System.set_frame_faults sys ~seed:(0xff00 + seed) ~drop:0.03 ~duplicate:0.03
    ~delay:0.001 ();
  let heal_everything () =
    List.iter (fun n -> System.set_disk_faults sys n Disk_fault.none) st.faulty;
    st.faulty <- [];
    resync_down sys st;
    List.iter (fun n -> System.recover sys n) st.down;
    st.down <- [];
    if st.partitioned then begin
      System.heal sys;
      st.partitioned <- false
    end;
    System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys
  in
  for round = 1 to 7 do
    resync_down sys st;
    fault_step ~profile rng sys st;
    (* Plain ops: one write + one read per region from random live nodes;
       failures under fire are fine — the recorder marks them ambiguous
       and the checkers honour the ambiguity. *)
    List.iter
      (fun (home, addr) ->
        let writer = Option.get (pick rng (up_nodes st)) in
        let reader = Option.get (pick rng (up_nodes st)) in
        System.run_fiber ~name:"combined-workload" sys (fun () ->
            (match
               Client.write_bytes clients.(writer) ~addr (bytes_s (fresh home))
             with
            | Ok () | Error _ -> ());
            match Client.read_bytes clients.(reader) ~addr 8 with
            | Ok _ | Error _ -> ()))
      regs;
    (* One read-modify-write transaction across two random regions: the
       reads take shared locks, the writes force the upgrade path. *)
    let (_, a1), (_, a2) =
      let arr = Array.of_list regs in
      Kutil.Rng.shuffle rng arr;
      (arr.(0), arr.(1))
    in
    let coord = Option.get (pick rng (up_nodes st)) in
    let v = fresh 0 in
    System.run_fiber ~name:"combined-txn" sys (fun () ->
        match
          Client.txn clients.(coord) (fun txn ->
              match Client.txn_read clients.(coord) txn ~addr:a1 ~len:8 with
              | Error _ as e -> e
              | Ok _ -> (
                match Client.txn_read clients.(coord) txn ~addr:a2 ~len:8 with
                | Error _ as e -> e
                | Ok _ -> (
                  match
                    Client.txn_write clients.(coord) txn ~addr:a1 (bytes_s v)
                  with
                  | Error _ as e -> e
                  | Ok () ->
                    Client.txn_write clients.(coord) txn ~addr:a2 (bytes_s v))))
        with
        | Ok () | Error _ -> ());
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    if round mod 3 = 0 then heal_everything ()
  done;
  (* Final heal: every fault class off, a settled write per region, then
     two-vantage validation reads. *)
  System.clear_frame_faults sys;
  heal_everything ();
  settle_all "final checkpoint";
  let finals =
    List.concat_map
      (fun (_, addr) ->
        [ read_settled ~len:8 sys clients.(0) ~addr;
          read_settled ~len:8 sys clients.(5) ~addr ])
      regs
  in
  let s = Khazana.Wire.Sim.Net.stats (System.net sys) in
  if s.sent <> s.delivered + s.dropped + s.in_flight then
    Alcotest.failf "network accounting leak: sent %d <> %d + %d + %d" s.sent
      s.delivered s.dropped s.in_flight;
  let events =
    assert_history_ok ~what:(Printf.sprintf "combined sweep seed %d" seed) ring
  in
  {
    fingerprint =
      String.concat ";" finals
      ^ Printf.sprintf "@%d/%d" (System.now sys) (List.length events);
    events;
  }

(* ---------------- Versioned (MVCC) chaos sweep ----------------------- *)

(* Crashes and partitions over a mixed fleet: transactional traffic stays
   on CREW regions (strict, linearizable, serializable — judged by the
   usual checkers), while versioned regions take concurrent plain writes
   plus snapshot reads and occasional CAS writes. The MVCC addresses are
   excluded from the linearizability projection — concurrent LWW publishes
   are not linearizable by design — and instead gated on the MVCC checks:
   no out-of-thin-air reads, and every snapshot pin observes one value. *)
let run_versioned_nemesis ~seed () =
  let sys = mk ~seed () in
  let rng = Kutil.Rng.create ~seed:(0x766572 + (seed * 7919)) in
  let clients = Array.init node_count (fun n -> System.client sys n ()) in
  let ring = instrument sys clients in
  let st = { down = []; partitioned = false; faulty = [] } in
  let stamp = ref 0 in
  let fresh tag =
    incr stamp;
    Printf.sprintf "%02d%06d" tag !stamp
  in
  let mk_region ~home ~protocol =
    System.run_fiber ~name:"versioned-create" sys (fun () ->
        let attr = Attr.make ~owner:home ~protocol ~min_replicas:2 () in
        ok (Client.create_region clients.(home) ~attr 4096))
  in
  let crew_regs =
    List.map (fun home -> (home, (mk_region ~home ~protocol:"crew").Region.base))
      [ 1; 2 ]
  in
  let ver_regs =
    List.map
      (fun home ->
        let r = mk_region ~home ~protocol:"versioned" in
        (home, r.Region.base, r.Region.len))
      [ 3; 4; 5 ]
  in
  let mvcc addr =
    List.exists
      (fun (_, base, len) ->
        Gaddr.compare base addr <= 0
        && Gaddr.compare addr (Gaddr.add_int base len) < 0)
      ver_regs
  in
  let heal_everything () =
    resync_down sys st;
    List.iter (fun n -> System.recover sys n) st.down;
    st.down <- [];
    if st.partitioned then begin
      System.heal sys;
      st.partitioned <- false
    end;
    System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys
  in
  let settle_all what =
    heal_everything ();
    List.iter
      (fun (home, addr) ->
        let rec attempt k =
          let r =
            System.run_fiber ~name:"versioned-settle" sys (fun () ->
                Client.write_bytes clients.(home) ~addr (bytes_s (fresh home)))
          in
          match r with
          | Ok () -> ()
          | Error _ when k > 0 ->
            System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
            attempt (k - 1)
          | Error e ->
            Alcotest.failf "%s: settled write refused for home %d: %s" what
              home (Daemon.error_to_string e)
        in
        attempt 4)
      (crew_regs @ List.map (fun (h, b, _) -> (h, b)) ver_regs);
    System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys
  in
  settle_all "initial checkpoint";
  for round = 1 to 7 do
    resync_down sys st;
    fault_step rng sys st;
    (* Versioned traffic: concurrent writers from two random nodes, then a
       reader that either reads plain or opens a snapshot and reads it
       twice — with a write landing in between, so pin stability has
       something to bite on. *)
    List.iter
      (fun (home, addr, _) ->
        let w1 = Option.get (pick rng (up_nodes st)) in
        let w2 = Option.get (pick rng (up_nodes st)) in
        let reader = Option.get (pick rng (up_nodes st)) in
        System.run_fiber ~name:"versioned-workload" sys (fun () ->
            (match
               Client.write_bytes clients.(w1) ~addr (bytes_s (fresh home))
             with
            | Ok () | Error _ -> ());
            if Kutil.Rng.bool rng then (
              (* Optimistic CAS: read the home version, publish against it.
                 A [`Conflict] just means somebody else won the race. *)
              match Client.page_version clients.(w2) addr with
              | Error _ -> ()
              | Ok v -> (
                match
                  Client.write_cas clients.(w2) ~addr ~expected:v
                    (bytes_s (fresh home))
                with
                | Ok () | Error _ -> ()))
            else (
              match
                Client.write_bytes clients.(w2) ~addr (bytes_s (fresh home))
              with
              | Ok () | Error _ -> ());
            match Client.snapshot clients.(reader) with
            | Error _ -> ()
            | Ok snap ->
              (match Client.snapshot_read clients.(reader) ~snap ~addr 8 with
              | Ok _ | Error _ -> ());
              (match
                 Client.write_bytes clients.(w1) ~addr (bytes_s (fresh home))
               with
              | Ok () | Error _ -> ());
              (match Client.snapshot_read clients.(reader) ~snap ~addr 8 with
              | Ok _ | Error _ -> ());
              Client.release_snapshot clients.(reader) snap))
      ver_regs;
    (* CREW traffic, including a cross-region transaction: the strict side
       of the fleet keeps its full linearizability + serializability
       obligations while MVCC churns next door. *)
    List.iter
      (fun (home, addr) ->
        let writer = Option.get (pick rng (up_nodes st)) in
        let reader = Option.get (pick rng (up_nodes st)) in
        System.run_fiber ~name:"versioned-crew-workload" sys (fun () ->
            (match
               Client.write_bytes clients.(writer) ~addr (bytes_s (fresh home))
             with
            | Ok () | Error _ -> ());
            match Client.read_bytes clients.(reader) ~addr 8 with
            | Ok _ | Error _ -> ()))
      crew_regs;
    let (_, a1), (_, a2) =
      match crew_regs with
      | [ x; y ] -> if Kutil.Rng.bool rng then (x, y) else (y, x)
      | _ -> assert false
    in
    let coord = Option.get (pick rng (up_nodes st)) in
    let v = fresh 0 in
    System.run_fiber ~name:"versioned-txn" sys (fun () ->
        match
          Client.txn clients.(coord) (fun txn ->
              match Client.txn_read clients.(coord) txn ~addr:a1 ~len:8 with
              | Error _ as e -> e
              | Ok _ -> (
                match
                  Client.txn_write clients.(coord) txn ~addr:a1 (bytes_s v)
                with
                | Error _ as e -> e
                | Ok () ->
                  Client.txn_write clients.(coord) txn ~addr:a2 (bytes_s v)))
        with
        | Ok () | Error _ -> ());
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    if round mod 3 = 0 then settle_all "mid-run checkpoint"
  done;
  settle_all "final checkpoint";
  (* Final reads from two vantages land in the history; the MVCC checks
     cover the versioned ones (any attempted value is legal under LWW —
     a backgrounded republish is a late write — but thin air is not). *)
  List.iter
    (fun (_, addr) -> ignore (read_settled ~len:8 sys clients.(0) ~addr))
    (crew_regs @ List.map (fun (h, b, _) -> (h, b)) ver_regs);
  let s = Khazana.Wire.Sim.Net.stats (System.net sys) in
  if s.sent <> s.delivered + s.dropped + s.in_flight then
    Alcotest.failf "network accounting leak: sent %d <> %d + %d + %d" s.sent
      s.delivered s.dropped s.in_flight;
  let events = History.assemble (History.Ring.entries ring) in
  let report = Check.analyze ~init:zero_init ~mvcc events in
  if not (Check.passed report) then
    Alcotest.failf "versioned sweep seed %d: %s" seed (Check.summary report)

(* The oracle has teeth on real histories, not just the unit fixtures:
   take a passing combined run, append a fabricated stale read — an old
   value re-observed strictly after a later, non-overlapping committed
   write — and the checker must reject it with a minimized
   counterexample. *)
let test_combined_catches_injected_stale_read () =
  let { events; _ } = run_combined ~seed:1 () in
  let writes : (Gaddr.t, (string * int * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : History.event) ->
      match e.History.e_op with
      | History.O_write { addr; value } when e.History.e_status = History.Ok_
        ->
        Hashtbl.replace writes addr
          ((value, e.History.e_invoke, e.History.e_return)
          :: Option.value (Hashtbl.find_opt writes addr) ~default:[])
      | _ -> ())
    events;
  let stale =
    Hashtbl.fold
      (fun addr ws acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let ws =
            List.sort (fun (_, i1, _) (_, i2, _) -> compare i1 i2) ws
          in
          let rec find = function
            | (v1, _, r1) :: ((_, i2, _) :: _ as rest) ->
              if r1 < i2 then Some (addr, v1) else find rest
            | _ -> None
          in
          find ws)
      writes None
  in
  match stale with
  | None -> Alcotest.fail "combined run produced no sequential write pair"
  | Some (addr, v1) ->
    let horizon =
      List.fold_left
        (fun m (e : History.event) ->
          if e.History.e_return < max_int then max m e.History.e_return else m)
        0 events
    in
    let fake =
      {
        History.e_proc = 99;
        e_id = 0;
        e_invoke = horizon + 1_000;
        e_return = horizon + 2_000;
        e_op = History.O_read { addr; len = 8; value = Some v1 };
        e_status = History.Ok_;
      }
    in
    let report = Check.analyze ~init:zero_init (events @ [ fake ]) in
    if Check.passed report then
      Alcotest.fail "checker accepted an injected stale read";
    let s = Check.summary report in
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "counterexample names the violation" true
      (contains "NOT LINEARIZABLE")

(* ---------------- Directed: shared read locks in 2PL ------------------ *)

(* Two transactions on different nodes must hold read locks on the same
   range at the same time (CREW: concurrent readers). Before the shared
   read path, [txn_read] took a write lock, so reader B would block until
   reader A committed — the in-body flag catches exactly that. *)
let test_txn_readers_share_locks () =
  let sys = mk ~seed:41 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "original"));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let c2 = System.client sys 2 () in
  let c3 = System.client sys 3 () in
  let b_read = ref false in
  let a_saw_b = ref false in
  let a_done = ref false and b_done = ref false in
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      (match
         Client.txn c2 (fun txn ->
             match Client.txn_read c2 txn ~addr:region.Region.base ~len:8 with
             | Error _ as e -> e
             | Ok _ ->
               (* Hold the read lock until B's read completes (bounded). *)
               let rec wait k =
                 if (not !b_read) && k > 0 then begin
                   Ksim.Fiber.sleep (Ksim.Time.ms 100);
                   wait (k - 1)
                 end
               in
               wait 50;
               a_saw_b := !b_read;
               Ok ())
       with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "reader A failed: %s" (Daemon.error_to_string e));
      a_done := true);
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      (* A head start for A, so A owns the read lock first. *)
      Ksim.Fiber.sleep (Ksim.Time.ms 200);
      (match
         Client.txn c3 (fun txn ->
             match Client.txn_read c3 txn ~addr:region.Region.base ~len:8 with
             | Error _ as e -> e
             | Ok b ->
               Alcotest.(check string) "reader B sees the data" "original"
                 (Bytes.to_string b);
               b_read := true;
               Ok ())
       with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "reader B failed: %s" (Daemon.error_to_string e));
      b_done := true);
  System.run_until_quiet ~limit:(Ksim.Time.sec 30) sys;
  Alcotest.(check bool) "both read-only transactions committed" true
    (!a_done && !b_done);
  Alcotest.(check bool)
    "B's read completed while A still held its read lock" true !a_saw_b

(* The read→write upgrade rule: A reads under a shared lock, then writes
   the same range while a competing plain writer is queued. Whichever way
   the release-reacquire race lands, validation guarantees no lost
   update: either A reacquires first (B's write follows A's commit) or B
   sneaks in and A's upgrade aborts with [`Conflict]. The recorded
   history must stay linearizable either way. *)
let test_txn_upgrade_validates () =
  let sys = mk ~seed:43 () in
  let clients = Array.init node_count (fun n -> System.client sys n ()) in
  let ring = instrument sys clients in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 () in
        let r = ok (Client.create_region clients.(1) ~attr 4096) in
        ok (Client.write_bytes clients.(1) ~addr:r.Region.base (bytes_s "original"));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let addr = region.Region.base in
  let a_result = ref None in
  let b_acked = ref false in
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      a_result :=
        Some
          (Client.txn clients.(2) (fun txn ->
               match Client.txn_read clients.(2) txn ~addr ~len:8 with
               | Error _ as e -> e
               | Ok _ ->
                 (* Window for B to queue its write-lock request. *)
                 Ksim.Fiber.sleep (Ksim.Time.ms 500);
                 Client.txn_write clients.(2) txn ~addr (bytes_s "txn-aaaa"))));
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      Ksim.Fiber.sleep (Ksim.Time.ms 100);
      match Client.write_bytes clients.(3) ~addr (bytes_s "sneaky!!") with
      | Ok () -> b_acked := true
      | Error _ -> ());
  System.run_until_quiet ~limit:(Ksim.Time.sec 30) sys;
  Alcotest.(check bool) "plain writer eventually acked" true !b_acked;
  let final =
    Bytes.to_string
      (System.run_fiber sys (fun () ->
           ok (Client.read_bytes clients.(0) ~addr 8)))
  in
  (match !a_result with
  | Some (Ok ()) ->
    (* A reacquired first: serial order A then B, B's later write wins. *)
    Alcotest.(check string) "B's write is final" "sneaky!!" final
  | Some (Error (`Conflict _)) ->
    (* B won the upgrade window: validation refused A's stale read. *)
    Alcotest.(check string) "B's write survived" "sneaky!!" final
  | Some (Error e) ->
    Alcotest.failf "unexpected upgrade outcome: %s" (Daemon.error_to_string e)
  | None -> Alcotest.fail "transaction never finished");
  ignore (assert_history_ok ~what:"upgrade contention" ring)

(* ------------- Directed: Tx_prepare into an unreachable peer ---------- *)

(* The participant is crashed and already suspected when the transaction
   starts, so the coordinator's Tx_prepare fan-out hits fail-fast
   [`Unreachable] instead of a vote timeout (the real-socket twin of this
   case lives in test_transport.ml and khazanad --chaos). Presumed abort:
   the client sees an abort-class error, nothing becomes visible, no page
   stays pinned, nobody is left in limbo. *)
let test_2pc_unreachable_participant () =
  let sys = mk ~seed:151 () in
  let c1 = System.client sys 1 () in
  let c2 = System.client sys 2 () in
  let a, b =
    System.run_fiber sys (fun () ->
        let ra = ok (Client.create_region c1 4096) in
        let rb = ok (Client.create_region c2 4096) in
        ok (Client.write_bytes c1 ~addr:ra.Region.base (bytes_s "old-a"));
        ok (Client.write_bytes c2 ~addr:rb.Region.base (bytes_s "old-b"));
        (ra.Region.base, rb.Region.base))
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  System.crash sys 1;
  (* Let gossip suspicion mark node 1 down (threshold 1.5 s). *)
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  let c3 = System.client sys 3 () in
  let outcome =
    System.run_fiber ~name:"2pc-unreachable" sys (fun () ->
        Client.txn c3 (fun txn -> txn_write_both c3 txn a b "new-a" "new-b"))
  in
  (match outcome with
  | Ok () -> Alcotest.fail "committed with a participant unreachable"
  | Error (`Conflict _ | `Unavailable _ | `Timeout | `Unreachable) -> ()
  | Error e ->
    Alcotest.failf "unexpected error class: %s" (Daemon.error_to_string e));
  (* Presumed abort resolved it: no prepared images, no orphaned pins. *)
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  List.iter
    (fun n ->
      if Daemon.is_up (System.daemon sys n) then begin
        Alcotest.(check int)
          (Printf.sprintf "node %d limbo drained" n)
          0
          (Daemon.txn_prepared_count (System.daemon sys n));
        Alcotest.(check int)
          (Printf.sprintf "node %d has no orphaned pins" n)
          0
          (Store.pinned_pages (Daemon.store (System.daemon sys n)))
      end)
    (List.init node_count Fun.id);
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 40) sys;
  let c4 = System.client sys 4 () in
  Alcotest.(check string) "a untouched" "old-a" (read_settled sys c4 ~addr:a);
  Alcotest.(check string) "b untouched" "old-b" (read_settled sys c4 ~addr:b);
  (* And the fleet still commits. *)
  System.run_fiber sys (fun () ->
      ok (Client.txn c4 (fun txn -> txn_write_both c4 txn a b "fin-a" "fin-b")));
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  Alcotest.(check string) "follow-up committed (a)" "fin-a"
    (read_settled sys c4 ~addr:a);
  Alcotest.(check string) "follow-up committed (b)" "fin-b"
    (read_settled sys c4 ~addr:b)

let test_determinism () =
  let seed = 1 in
  let a = run_nemesis ~seed () in
  let b = run_nemesis ~seed () in
  Alcotest.(check string) "same seed, same run" a b

let test_disk_fault_determinism () =
  (* seed 8 selects the crash-mid-flush profile: determinism must hold
     even when crashes fire from inside disk I/O. *)
  let a = run_nemesis ~disk:true ~seed:8 () in
  let b = run_nemesis ~disk:true ~seed:8 () in
  Alcotest.(check string) "same seed, same run under disk faults" a b

let test_combined_determinism () =
  (* The full multi-fault schedule — partitions + crashes + disk faults +
     frame faults — must still replay bit-for-bit from its seed, or the
     repro lines the sweeps print would be useless. *)
  let a = (run_combined ~seed:2 ()).fingerprint in
  let b = (run_combined ~seed:2 ()).fingerprint in
  Alcotest.(check string) "same seed, same combined run" a b

(* --------------------------- Harness --------------------------------- *)

let seeds_from_env var default =
  match Sys.getenv_opt var with
  | Some s ->
    let l = String.split_on_char ',' s |> List.filter_map int_of_string_opt in
    if l = [] then default else l
  | None -> default

let seeds = seeds_from_env "NEMESIS_SEEDS" [ 1; 2; 3; 4; 5 ]

(* Ten disk-fault seeds; seed mod 3 selects the pathology, so this range
   covers lost writes, torn writes and crash-mid-flush several times
   each. *)
let disk_seeds =
  seeds_from_env "NEMESIS_DISK_SEEDS" [ 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

(* 2PC sweep seeds: CI runs 26..35; the default keeps plain [dune runtest]
   bounded. *)
let twopc_seeds = seeds_from_env "NEMESIS_2PC_SEEDS" [ 26; 27 ]

(* Combined multi-fault sweep seeds: CI runs 41..50. *)
let combined_seeds = seeds_from_env "NEMESIS_COMBINED_SEEDS" [ 36; 37 ]

(* Versioned (MVCC) sweep seeds: CI runs 51..58. *)
let versioned_seeds = seeds_from_env "NEMESIS_VERSIONED_SEEDS" [ 51; 52 ]

let () =
  Alcotest.run "nemesis"
    [
      ( "directed",
        [
          Alcotest.test_case "replica floor after holder crash" `Quick
            test_floor_restored_after_holder_crash;
          Alcotest.test_case "concurrent writers single winner" `Quick
            test_concurrent_writers_single_winner;
          Alcotest.test_case "torn write recovered from WAL" `Quick
            test_torn_write_recovered_from_wal;
          Alcotest.test_case "crash mid-I/O recovers committed writes" `Quick
            test_crash_mid_io_recovers_committed_writes;
          Alcotest.test_case "post-recovery commits survive second crash"
            `Quick test_post_recovery_commits_survive_second_crash;
          Alcotest.test_case "crash mid-batched-acquire" `Quick
            test_crash_mid_batched_acquire;
          Alcotest.test_case "txn readers share locks" `Quick
            test_txn_readers_share_locks;
          Alcotest.test_case "txn read-to-write upgrade validates" `Quick
            test_txn_upgrade_validates;
          Alcotest.test_case "deterministic replay" `Slow test_determinism;
          Alcotest.test_case "deterministic replay under disk faults" `Slow
            test_disk_fault_determinism;
          Alcotest.test_case "deterministic replay of combined faults" `Slow
            test_combined_determinism;
          Alcotest.test_case "checker catches injected stale read" `Slow
            test_combined_catches_injected_stale_read;
        ] );
      ( "2pc directed",
        List.map
          (fun (step, nth) ->
            Alcotest.test_case
              (Printf.sprintf "coordinator dies at %s" step)
              `Quick
              (run_2pc_crash ~victim:3 ~step ~nth))
          coord_steps
        @ List.map
            (fun (step, nth) ->
              Alcotest.test_case
                (Printf.sprintf "participant dies at %s" step)
                `Quick
                (run_2pc_crash ~victim:1 ~step ~nth))
            participant_steps
        @ [
            Alcotest.test_case "partition during prepare" `Quick
              test_2pc_partition_during_prepare;
            Alcotest.test_case "unreachable participant aborts cleanly" `Quick
              test_2pc_unreachable_participant;
          ]
        @ List.map
            (fun step ->
              Alcotest.test_case
                (Printf.sprintf "kfs rename, renamer dies at %s" step)
                `Quick
                (run_kfs_rename_crash ~step))
            [ "coord.before_prepare"; "coord.all_acked";
              "coord.decision_logged"; "coord.decide_send" ] );
      ( "2pc sweep",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (with_repro ~group:"2pc sweep" ~env:"NEMESIS_2PC_SEEDS" ~seed
                 (fun () -> run_2pc_nemesis ~seed ())))
          twopc_seeds );
      ( "sweep",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (with_repro ~group:"sweep" ~env:"NEMESIS_SEEDS" ~seed (fun () ->
                   ignore (run_nemesis ~seed ()))))
          seeds );
      ( "disk sweep",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d (%s)" seed (fault_profile_name seed))
              `Slow
              (with_repro ~group:"disk sweep" ~env:"NEMESIS_DISK_SEEDS" ~seed
                 (fun () -> ignore (run_nemesis ~disk:true ~seed ()))))
          disk_seeds );
      ( "combined sweep",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d (%s)" seed (fault_profile_name seed))
              `Slow
              (with_repro ~group:"combined sweep"
                 ~env:"NEMESIS_COMBINED_SEEDS" ~seed (fun () ->
                   ignore (run_combined ~seed ()))))
          combined_seeds );
      ( "versioned sweep",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (with_repro ~group:"versioned sweep"
                 ~env:"NEMESIS_VERSIONED_SEEDS" ~seed (fun () ->
                   run_versioned_nemesis ~seed ())))
          versioned_seeds );
    ]
