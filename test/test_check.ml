(* Unit tests for lib/check: the history recorder, the per-address
   linearizability checker, the serializability checker, and the
   end-to-end projection — including deliberately-broken histories that
   the oracle must catch with a minimized counterexample. *)

module History = Kcheck.History
module Register = Kcheck.Register
module Serial = Kcheck.Serial
module Check = Kcheck.Check
module Gaddr = Kutil.Gaddr

let addr n = Gaddr.of_int (n * 4096)

let op ?(required = true) ?(label = "op") invoke return kind =
  { Register.invoke; return; kind; required; label }

let is_lin = function Register.Linearizable -> true | _ -> false
let is_violation = function Register.Violation _ -> true | _ -> false

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Register checker                                                    *)

let test_reg_sequential () =
  let ops =
    [
      op 0 1 (Register.W "a");
      op 2 3 (Register.R "a");
      op 4 5 (Register.W "b");
      op 6 7 (Register.R "b");
    ]
  in
  Alcotest.(check bool) "sequential ok" true (is_lin (Register.check ops))

let test_reg_init () =
  let ops = [ op 0 1 (Register.R "zero") ] in
  Alcotest.(check bool) "read of init" true
    (is_lin (Register.check ~init:"zero" ops));
  Alcotest.(check bool) "read of wrong init" true
    (is_violation (Register.check ~init:"other" ops))

let test_reg_stale_read () =
  (* both writes done, then a read returns the older value *)
  let ops =
    [
      op ~label:"w1" 0 1 (Register.W "v1");
      op ~label:"w2" 2 3 (Register.W "v2");
      op ~label:"r" 4 5 (Register.R "v1");
    ]
  in
  Alcotest.(check bool) "stale read caught" true
    (is_violation (Register.check ops))

let test_reg_concurrent_writes () =
  (* overlapping writes: the read may see either *)
  let see v =
    [
      op 0 10 (Register.W "v1");
      op 0 10 (Register.W "v2");
      op 11 12 (Register.R v);
    ]
  in
  Alcotest.(check bool) "sees v1" true (is_lin (Register.check (see "v1")));
  Alcotest.(check bool) "sees v2" true (is_lin (Register.check (see "v2")))

let test_reg_maybe_write () =
  (* a timed-out write may be observed... *)
  let observed =
    [
      op 0 1 (Register.W "v1");
      op ~required:false 2 max_int (Register.W "v2");
      op 10 11 (Register.R "v2");
    ]
  in
  Alcotest.(check bool) "maybe applied" true (is_lin (Register.check observed));
  (* ...or never land... *)
  let skipped =
    [
      op 0 1 (Register.W "v1");
      op ~required:false 2 max_int (Register.W "v2");
      op 10 11 (Register.R "v1");
    ]
  in
  Alcotest.(check bool) "maybe skipped" true (is_lin (Register.check skipped));
  (* ...but cannot un-land: observed then gone is a violation *)
  let flicker =
    [
      op 0 1 (Register.W "v1");
      op ~required:false 2 max_int (Register.W "v2");
      op 10 11 (Register.R "v2");
      op 12 13 (Register.R "v1");
    ]
  in
  Alcotest.(check bool) "flicker caught" true
    (is_violation (Register.check flicker))

let test_reg_lost_update () =
  (* two sequential committed txns both observed the initial value:
     the second missed the first's write *)
  let ops =
    [
      op ~label:"t1" 0 10 (Register.RW ("v0", "v1"));
      op ~label:"t2" 20 30 (Register.RW ("v0", "v2"));
    ]
  in
  Alcotest.(check bool) "lost update caught" true
    (is_violation (Register.check ~init:"v0" ops))

let test_reg_shrink () =
  (* noise + a stale read: shrink must keep w1 (observed) and r, and may
     keep w2 (the overwrite that makes r stale) — but must drop the
     unrelated earlier traffic *)
  let ops =
    [
      op ~label:"noise1" 0 1 (Register.W "n1");
      op ~label:"noise2" 2 3 (Register.R "n1");
      op ~label:"noise3" 4 5 (Register.W "n2");
      op ~label:"w1" 6 7 (Register.W "v1");
      op ~label:"w2" 8 9 (Register.W "v2");
      op ~label:"r" 10 11 (Register.R "v1");
    ]
  in
  (match Register.check ops with
  | Register.Violation full ->
      let shrunk = Register.shrink full in
      Alcotest.(check bool) "still fails" true
        (is_violation (Register.check shrunk));
      Alcotest.(check bool) "minimized"
        true
        (List.length shrunk <= 3);
      let labels = List.map (fun o -> o.Register.label) shrunk in
      Alcotest.(check bool) "keeps the stale read" true (List.mem "r" labels);
      Alcotest.(check bool) "keeps the observed write" true
        (List.mem "w1" labels)
  | _ -> Alcotest.fail "expected a violation");
  (* shrink never drops a write whose value a retained read observes *)
  let shrunk =
    Register.shrink
      [
        op ~label:"w" 0 1 (Register.W "v1");
        op ~label:"r1" 2 3 (Register.R "v1");
        op ~label:"r2" 2 3 (Register.R "zzz");
      ]
  in
  let has l = List.exists (fun o -> o.Register.label = l) shrunk in
  Alcotest.(check bool) "kept failing read" true (has "r2")

let test_reg_budget () =
  (* dozens of identical-window concurrent ops blow the budget *)
  let ops =
    List.init 18 (fun i ->
        op ~label:(Printf.sprintf "w%d" i) 0 1000 (Register.W (string_of_int i)))
  in
  let ops = ops @ [ op 1001 1002 (Register.R "nope") ] in
  match Register.check ~budget:1000 ops with
  | Register.Inconclusive -> ()
  | Register.Violation _ -> () (* small windows may still decide *)
  | Register.Linearizable -> Alcotest.fail "read of unwritten value passed"

(* ------------------------------------------------------------------ *)
(* Serializability checker                                             *)

let tx ?(committed = true) label invoke return reads writes =
  { Serial.label; invoke; return; reads; writes; committed }

let test_serial_chain () =
  let a = addr 1 and b = addr 2 in
  let txns =
    [
      tx "t1" 0 10 [] [ (a, "a1") ];
      tx "t2" 20 30 [ (a, "a1") ] [ (b, "b2") ];
      tx "t3" 40 50 [ (b, "b2") ] [];
    ]
  in
  (match Serial.check txns with
  | Serial.Serializable -> ()
  | _ -> Alcotest.fail "chain should serialize")

let test_serial_cycle () =
  (* fabricated impossible history: T1 observes T3's write yet T3
     transitively depends on T1 through wr + real-time edges *)
  let a = addr 1 and b = addr 2 and c = addr 3 in
  let txns =
    [
      tx "t1" 0 10 [ (c, "c3") ] [ (a, "a1") ];
      tx "t2" 20 30 [ (a, "a1") ] [ (b, "b2") ];
      tx "t3" 40 50 [ (b, "b2") ] [ (c, "c3") ];
    ]
  in
  match Serial.check txns with
  | Serial.Cycle (txs, _) ->
      Alcotest.(check bool) "cycle names the txns" true (List.length txs >= 2)
  | Serial.Serializable -> Alcotest.fail "cycle not detected"
  | Serial.Bad_history m -> Alcotest.fail ("bad history: " ^ m)

let test_serial_rt_only () =
  (* pure real-time contradiction: t2 read a value written by a txn
     that started after t2 finished *)
  let a = addr 1 in
  let txns =
    [ tx "t2" 0 10 [ (a, "late") ] []; tx "t1" 20 30 [] [ (a, "late") ] ]
  in
  match Serial.check txns with
  | Serial.Cycle _ -> ()
  | _ -> Alcotest.fail "rt cycle not detected"

let test_serial_promotion () =
  (* a maybe-applied txn whose write is observed is promoted and
     participates in ordering; unobserved maybes drop out *)
  let a = addr 1 and b = addr 2 in
  let observed =
    [
      tx ~committed:false "maybe" 0 max_int [] [ (a, "x") ];
      tx "reader" 10 20 [ (a, "x") ] [];
    ]
  in
  (match Serial.check observed with
  | Serial.Serializable -> ()
  | _ -> Alcotest.fail "promoted maybe should serialize");
  (* promoted maybe inside an rt contradiction is caught *)
  let contradiction =
    [
      tx "r2" 0 10 [ (b, "y") ] [];
      tx ~committed:false "maybe" 20 max_int [] [ (b, "y") ];
      tx "r3" 30 40 [ (b, "y") ] [];
    ]
  in
  match Serial.check contradiction with
  | Serial.Cycle _ -> ()
  | _ -> Alcotest.fail "promoted maybe rt cycle not detected"

let test_serial_dup_writer () =
  let a = addr 1 in
  let txns = [ tx "t1" 0 1 [] [ (a, "same") ]; tx "t2" 2 3 [] [ (a, "same") ] ] in
  match Serial.check txns with
  | Serial.Bad_history _ -> ()
  | _ -> Alcotest.fail "duplicate (addr,value) writer not flagged"

(* ------------------------------------------------------------------ *)
(* History recording + assembly                                        *)

let mk_recorder ?(proc = 0) () =
  let clock = ref 0 in
  let ring = History.Ring.create () in
  let r =
    History.recorder
      ~now:(fun () -> incr clock; !clock)
      ~proc (History.Ring.sink ring)
  in
  (r, ring)

let test_assemble () =
  let r, ring = mk_recorder () in
  let id = History.invoke r (History.Write { addr = addr 1; value = "v" }) in
  History.finish r ~id History.Ok_;
  let id = History.invoke r (History.Read { addr = addr 1; len = 1 }) in
  History.finish r ~id ~value:"v" History.Ok_;
  (* an op that never returns: process died mid-call *)
  let _hung = History.invoke r (History.Write { addr = addr 1; value = "w" }) in
  let events = History.assemble (History.Ring.entries ring) in
  Alcotest.(check int) "three events" 3 (List.length events);
  let hung =
    List.find (fun e -> e.History.e_status = History.Maybe) events
  in
  Alcotest.(check bool) "hung op unbounded" true (hung.History.e_return = max_int)

let test_assemble_txn () =
  let r, ring = mk_recorder () in
  let id = History.invoke r History.Txn in
  History.txn_read_entry r ~id (addr 1) "old";
  History.txn_write_entry r ~id (addr 1) "new";
  History.txn_write_entry r ~id (addr 2) "other";
  History.finish r ~id History.Ok_;
  match History.assemble (History.Ring.entries ring) with
  | [ { History.e_op = History.O_txn { reads; writes }; _ } ] ->
      Alcotest.(check int) "one read" 1 (List.length reads);
      Alcotest.(check int) "two writes" 2 (List.length writes)
  | _ -> Alcotest.fail "expected one txn event"

let test_ring_wrap () =
  let ring = History.Ring.create ~capacity:4 () in
  for i = 0 to 9 do
    History.Ring.sink ring
      (History.Invoke { proc = 0; id = i; at = i; call = History.Txn })
  done;
  Alcotest.(check int) "capped" 4 (History.Ring.length ring);
  match History.Ring.entries ring with
  | History.Invoke { id; _ } :: _ -> Alcotest.(check int) "oldest kept" 6 id
  | _ -> Alcotest.fail "expected invokes"

let test_jsonl_roundtrip () =
  let entries =
    [
      History.Invoke
        { proc = 3; id = 7; at = 42; call = History.Read { addr = addr 1; len = 64 } };
      History.Invoke
        {
          proc = 3;
          id = 8;
          at = 43;
          call = History.Write { addr = addr 2; value = "\x00\xffbinary" };
        };
      History.Invoke { proc = 3; id = 9; at = 44; call = History.Txn };
      History.Tread { proc = 3; id = 9; at = 45; addr = addr 1; value = "ob\x01s" };
      History.Twrite { proc = 3; id = 9; at = 46; addr = addr 2; value = "w" };
      History.Return { proc = 3; id = 9; at = 47; status = History.Ok_; value = None };
      History.Return
        { proc = 3; id = 7; at = 48; status = History.Maybe; value = Some "v\x00" };
    ]
  in
  let file = Filename.temp_file "khistory" ".jsonl" in
  let oc = open_out_bin file in
  List.iter (History.jsonl_sink oc) entries;
  (* torn final line: a partial json object, as a SIGKILL would leave *)
  output_string oc "{\"t\":\"return\",\"proc\":3,\"id\"";
  close_out oc;
  let back = History.read_jsonl file in
  Sys.remove file;
  Alcotest.(check int) "all whole lines parsed" (List.length entries)
    (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "entry round-trips" (History.entry_to_json a)
        (History.entry_to_json b))
    entries back

(* ------------------------------------------------------------------ *)
(* End-to-end projection                                               *)

let ev ?(proc = 0) ?(id = 0) ?(status = History.Ok_) invoke return op =
  {
    History.e_proc = proc;
    e_id = id;
    e_invoke = invoke;
    e_return = return;
    e_op = op;
    e_status = status;
  }

let test_analyze_clean () =
  let a = addr 1 and b = addr 2 in
  let events =
    [
      ev ~id:0 0 1 (History.O_write { addr = a; value = "a1" });
      ev ~id:1 2 3 (History.O_write { addr = b; value = "b1" });
      ev ~id:2 4 10
        (History.O_txn
           {
             reads = [ (a, "a1", 5) ];
             writes = [ (a, "a2", 6); (b, "b2", 7) ];
           });
      ev ~id:3 11 12 (History.O_read { addr = a; len = 2; value = Some "a2" });
      ev ~id:4 11 12 (History.O_read { addr = b; len = 2; value = Some "b2" });
    ]
  in
  let r = Check.analyze events in
  if not (Check.passed r) then
    Alcotest.failf "clean history failed:@.%a" Check.pp r

let test_analyze_catches_stale () =
  let a = addr 1 in
  let events =
    [
      ev ~id:0 0 1 (History.O_write { addr = a; value = "a1" });
      ev ~id:1 2 3 (History.O_write { addr = a; value = "a2" });
      ev ~id:2 4 5 (History.O_read { addr = a; len = 2; value = Some "a1" });
    ]
  in
  let r = Check.analyze events in
  Alcotest.(check bool) "stale read fails" false (Check.passed r);
  let s = Check.summary r in
  Alcotest.(check bool) "counterexample printed" true
    (contains ~sub:"NOT LINEARIZABLE" s)

let test_analyze_own_write_excluded () =
  let a = addr 1 in
  (* txn reads its own buffered write: internal, not an external
     observation of "a2" (which nobody else wrote) *)
  let events =
    [
      ev ~id:0 0 1 (History.O_write { addr = a; value = "a1" });
      ev ~id:1 2 10
        (History.O_txn
           {
             reads = [ (a, "a1", 3); (a, "a2", 5) ];
             writes = [ (a, "a2", 4) ];
           });
    ]
  in
  let r = Check.analyze events in
  if not (Check.passed r) then
    Alcotest.failf "own-write read should be internal:@.%a" Check.pp r

let test_analyze_zero_init () =
  let a = addr 1 in
  let zeros = String.make 4 '\000' in
  let events =
    [ ev ~id:0 0 1 (History.O_read { addr = a; len = 4; value = Some zeros }) ]
  in
  let r = Check.analyze ~init:(fun _ -> zeros) events in
  Alcotest.(check bool) "zero-filled read ok" true (Check.passed r);
  let r2 = Check.analyze events in
  Alcotest.(check bool) "without init it fails" false (Check.passed r2)

let () =
  Alcotest.run "check"
    [
      ( "register",
        [
          Alcotest.test_case "sequential" `Quick test_reg_sequential;
          Alcotest.test_case "init value" `Quick test_reg_init;
          Alcotest.test_case "stale read caught" `Quick test_reg_stale_read;
          Alcotest.test_case "concurrent writes" `Quick test_reg_concurrent_writes;
          Alcotest.test_case "maybe-applied write" `Quick test_reg_maybe_write;
          Alcotest.test_case "lost update caught" `Quick test_reg_lost_update;
          Alcotest.test_case "shrink" `Quick test_reg_shrink;
          Alcotest.test_case "budget" `Quick test_reg_budget;
        ] );
      ( "serial",
        [
          Alcotest.test_case "wr chain" `Quick test_serial_chain;
          Alcotest.test_case "wr cycle caught" `Quick test_serial_cycle;
          Alcotest.test_case "rt cycle caught" `Quick test_serial_rt_only;
          Alcotest.test_case "maybe promotion" `Quick test_serial_promotion;
          Alcotest.test_case "duplicate writer flagged" `Quick test_serial_dup_writer;
        ] );
      ( "history",
        [
          Alcotest.test_case "assemble + hung op" `Quick test_assemble;
          Alcotest.test_case "assemble txn" `Quick test_assemble_txn;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "jsonl round trip" `Quick test_jsonl_roundtrip;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "clean history" `Quick test_analyze_clean;
          Alcotest.test_case "stale read caught end-to-end" `Quick
            test_analyze_catches_stale;
          Alcotest.test_case "own-write reads internal" `Quick
            test_analyze_own_write_excluded;
          Alcotest.test_case "zero init" `Quick test_analyze_zero_init;
        ] );
    ]
