(* Unit tests for the three consistency-manager machines, driven through
   the network-free harness. *)

module H = Cm_harness
module Ctypes = Kconsistency.Types

let nodes = [ 0; 1; 2; 3 ]
let initial = Bytes.of_string "v0"

let mk ?(protocol = "crew") ?(min_replicas = 1) ?(home = 0) () =
  H.create ~protocol ~home ~min_replicas ~nodes ~initial ()

(* ------------------------------- CREW ------------------------------ *)

let test_crew_home_local_ops () =
  let h = mk () in
  let r = H.acquire_sync h 0 Ctypes.Read in
  Alcotest.(check bool) "granted" true (H.is_granted h r);
  Alcotest.(check string) "still owner" "owned_excl" (H.state h 0);
  H.release h 0 Ctypes.Read ~data:None;
  let w = H.acquire_sync h 0 Ctypes.Write in
  Alcotest.(check bool) "write granted" true (H.is_granted h w);
  H.release h 0 Ctypes.Write ~data:(Some (Bytes.of_string "v1"));
  Alcotest.(check int) "version bumped" 2 (H.version h 0)

let test_crew_remote_read () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  Alcotest.(check string) "n1 shared" "shared" (H.state h 1);
  Alcotest.(check string) "home downgraded" "owned_shared" (H.state h 0);
  Alcotest.(check (option string)) "data travelled" (Some "v0")
    (Option.map Bytes.to_string (H.installed_data h 1))

let test_crew_concurrent_readers () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  ignore (H.acquire_sync h 2 Ctypes.Read);
  ignore (H.acquire_sync h 3 Ctypes.Read);
  Alcotest.(check bool) "all hold copies" true
    (H.has_copy h 1 && H.has_copy h 2 && H.has_copy h 3);
  Alcotest.(check (option string)) "no violation" None
    (H.crew_invariant_violation h)

let test_crew_write_invalidates_readers () =
  let h = mk () in
  let r1 = H.acquire_sync h 1 Ctypes.Read in
  ignore (H.acquire_sync h 2 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  H.release h 2 Ctypes.Read ~data:None;
  ignore r1;
  ignore (H.acquire_sync h 3 Ctypes.Write);
  Alcotest.(check string) "writer exclusive" "owned_excl" (H.state h 3);
  Alcotest.(check bool) "readers invalidated" true
    ((not (H.has_copy h 1)) && not (H.has_copy h 2));
  Alcotest.(check bool) "home copy gone too" true (not (H.has_copy h 0))

let test_crew_write_waits_for_active_readers () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  (* Writer asks while n1 still holds its read lock. *)
  let w = H.acquire h 2 Ctypes.Write in
  H.drain h;
  Alcotest.(check bool) "write delayed" false (H.is_granted h w);
  Alcotest.(check (option string)) "no violation while waiting" None
    (H.crew_invariant_violation h);
  (* Release the reader: the deferred invalidation acks and the write
     proceeds. *)
  H.release h 1 Ctypes.Read ~data:None;
  H.drain h;
  Alcotest.(check bool) "write now granted" true (H.is_granted h w)

let test_crew_reader_waits_for_writer () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  let r = H.acquire h 2 Ctypes.Read in
  H.drain h;
  Alcotest.(check bool) "read delayed" false (H.is_granted h r);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "w1"));
  H.drain h;
  Alcotest.(check bool) "read granted after release" true (H.is_granted h r);
  Alcotest.(check (option string)) "sees the write" (Some "w1")
    (Option.map Bytes.to_string (H.installed_data h 2))

let test_crew_ownership_migrates () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "n1"));
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "n2"));
  Alcotest.(check string) "n2 owns" "owned_excl" (H.state h 2);
  Alcotest.(check string) "n1 lost it" "invalid" (H.state h 1);
  let r = H.acquire_sync h 3 Ctypes.Read in
  ignore r;
  Alcotest.(check (option string)) "reads newest" (Some "n2")
    (Option.map Bytes.to_string (H.installed_data h 3))

let test_crew_local_write_read_cycle () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "x"));
  (* n1 is now owner: subsequent ops stay local (no new wire traffic). *)
  let before = List.length h.H.wire in
  let w = H.acquire h 1 Ctypes.Write in
  Alcotest.(check bool) "local regrant" true (H.is_granted h w);
  Alcotest.(check int) "no messages" before (List.length h.H.wire)

let test_crew_eviction_returns_ownership () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "dirty"));
  (* Local storage victimises n1's page. *)
  H.feed h 1 (Ctypes.Evicted { data = Bytes.of_string "dirty"; dirty = true });
  H.drain h;
  Alcotest.(check string) "n1 invalid" "invalid" (H.state h 1);
  Alcotest.(check bool) "home owns again" true (H.has_copy h 0);
  (* The data must survive the round trip. *)
  ignore (H.acquire_sync h 2 Ctypes.Read);
  Alcotest.(check (option string)) "data preserved" (Some "dirty")
    (Option.map Bytes.to_string (H.installed_data h 2))

let test_crew_shared_eviction_notifies () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  H.feed h 1 (Ctypes.Evicted { data = Bytes.of_string "v0"; dirty = false });
  H.drain h;
  (* A later write needs no invalidation round to n1. *)
  ignore (H.acquire_sync h 2 Ctypes.Write);
  Alcotest.(check string) "write fine" "owned_excl" (H.state h 2)

let test_crew_abort_unblocks () =
  let h = mk () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  (* n2 asks for a read but we abort before serving it. *)
  let r = H.acquire h 2 Ctypes.Read in
  H.feed h 2 (Ctypes.Abort { req = r });
  H.drain h;
  H.release h 1 Ctypes.Write ~data:None;
  H.drain h;
  Alcotest.(check bool) "aborted not granted" false (H.is_granted h r);
  (* A fresh request still works (the abort cleared in-flight state). *)
  let r2 = H.acquire_sync h 2 Ctypes.Read in
  Alcotest.(check bool) "fresh req ok" true (H.is_granted h r2)

let test_crew_min_replicas () =
  let h = mk ~min_replicas:3 () in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "r"));
  H.drain h;
  let holders = List.filter (fun n -> H.has_copy h n) nodes in
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 holders (got %d)" (List.length holders))
    true
    (List.length holders >= 3)

let test_crew_owner_crash_failover () =
  let h = mk ~min_replicas:2 () in
  (* Give n1 ownership, with a replica maintained somewhere. *)
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "precious"));
  H.drain h;
  (* n1 dies: its messages vanish; the next read must still succeed via
     fail-over (timeout fires, home retries elsewhere). *)
  let r = H.acquire h 2 Ctypes.Read in
  H.drop_node h 1;
  H.drain h;
  if not (H.is_granted h r) then begin
    H.fire_all_timers h;
    H.drop_node h 1;
    H.drain h
  end;
  Alcotest.(check bool) "read survived owner crash" true (H.is_granted h r);
  Alcotest.(check (option string)) "data recovered" (Some "precious")
    (Option.map Bytes.to_string (H.installed_data h 2))

(* ----------------------------- Release ----------------------------- *)

let test_release_stale_reads_allowed () =
  let h = mk ~protocol:"release" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  (* A writer updates; before the update propagates, n1 can still read its
     stale copy locally. *)
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "new"));
  (* Do NOT drain: update in flight. *)
  let r = H.acquire h 1 Ctypes.Read in
  Alcotest.(check bool) "stale read grants immediately" true (H.is_granted h r);
  H.release h 1 Ctypes.Read ~data:None;
  H.drain h;
  (* After propagation the new value is visible. *)
  Alcotest.(check (option string)) "update arrived" (Some "new")
    (Option.map Bytes.to_string (H.installed_data h 1))

let test_release_write_token_serialises () =
  let h = mk ~protocol:"release" () in
  let w1 = H.acquire h 1 Ctypes.Write in
  let w2 = H.acquire h 2 Ctypes.Write in
  H.drain h;
  (* Exactly one writer holds the token. *)
  let g1 = H.is_granted h w1 and g2 = H.is_granted h w2 in
  Alcotest.(check bool) "one granted" true (g1 <> g2 || (g1 && not g2));
  Alcotest.(check bool) "not both" false (g1 && g2);
  let winner, laggard, wl = if g1 then (1, 2, w2) else (2, 1, w1) in
  H.release h winner Ctypes.Write ~data:(Some (Bytes.of_string "first"));
  H.drain h;
  Alcotest.(check bool) "second writer proceeds" true (H.is_granted h wl);
  H.release h laggard Ctypes.Write ~data:(Some (Bytes.of_string "second"));
  H.drain h;
  Alcotest.(check (option string)) "last write wins at home" (Some "second")
    (Option.map Bytes.to_string (H.installed_data h 0))

let test_release_update_fanout () =
  let h = mk ~protocol:"release" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Read);
  H.release h 2 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 3 Ctypes.Write);
  H.release h 3 Ctypes.Write ~data:(Some (Bytes.of_string "fan"));
  H.drain h;
  List.iter
    (fun n ->
      Alcotest.(check (option string))
        (Printf.sprintf "replica n%d updated" n)
        (Some "fan")
        (Option.map Bytes.to_string (H.installed_data h n)))
    [ 0; 1; 2 ]

let test_release_no_copy_fetches () =
  let h = mk ~protocol:"release" () in
  ignore (H.acquire_sync h 3 Ctypes.Read);
  Alcotest.(check (option string)) "fetched from home" (Some "v0")
    (Option.map Bytes.to_string (H.installed_data h 3))

let test_release_writer_crash_reclaims_token () =
  let h = mk ~protocol:"release" () in
  let w1 = H.acquire h 1 Ctypes.Write in
  H.drain h;
  Alcotest.(check bool) "granted" true (H.is_granted h w1);
  (* n1 dies holding the token. *)
  H.drop_node h 1;
  let w2 = H.acquire h 2 Ctypes.Write in
  H.drain h;
  Alcotest.(check bool) "blocked" false (H.is_granted h w2);
  H.fire_all_timers h;
  H.drain h;
  Alcotest.(check bool) "token reclaimed" true (H.is_granted h w2)

(* ----------------------------- Eventual ---------------------------- *)

let test_eventual_immediate_grants () =
  let h = mk ~protocol:"eventual" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  (* Both nodes may hold write locks simultaneously: optimistic. *)
  let w1 = H.acquire h 1 Ctypes.Write in
  let w2 = H.acquire_sync h 2 Ctypes.Write in
  H.drain h;
  Alcotest.(check bool) "both granted" true (H.is_granted h w1 && H.is_granted h w2)

let test_eventual_convergence_lww () =
  let h = mk ~protocol:"eventual" () in
  (* Everyone gets a copy. *)
  List.iter
    (fun n ->
      ignore (H.acquire_sync h n Ctypes.Read);
      H.release h n Ctypes.Read ~data:None)
    [ 1; 2; 3 ];
  (* Concurrent conflicting writes. *)
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "from1"));
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "from2"));
  H.drain h;
  (* Anti-entropy rounds: fire the fan-out timers until quiet. *)
  for _ = 1 to 4 do
    H.fire_all_timers h;
    H.drain h
  done;
  let versions = List.map (fun n -> H.version h n) nodes in
  let first = List.hd versions in
  Alcotest.(check bool)
    (Format.asprintf "all versions equal (%a)"
       (Format.pp_print_list Format.pp_print_int)
       versions)
    true
    (List.for_all (( = ) first) versions);
  let data =
    List.filter_map (fun n -> Option.map Bytes.to_string (H.installed_data h n)) nodes
  in
  let d0 = List.hd data in
  Alcotest.(check bool) "all data equal" true (List.for_all (( = ) d0) data)

(* --------------------------- write-shared -------------------------- *)

let sync_rounds h =
  for _ = 1 to 6 do
    H.fire_all_timers h;
    H.drain h
  done

let test_wshared_concurrent_disjoint_writers () =
  (* A two-byte page, one byte per writer. *)
  let h =
    H.create ~protocol:"wshared" ~home:0 ~min_replicas:1 ~nodes
      ~initial:(Bytes.of_string "AB") ()
  in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Read);
  H.release h 2 Ctypes.Read ~data:None;
  (* Concurrent write locks on the SAME page: both grant immediately. *)
  let w1 = H.acquire h 1 Ctypes.Write in
  let w2 = H.acquire h 2 Ctypes.Write in
  Alcotest.(check bool) "both writers granted" true
    (H.is_granted h w1 && H.is_granted h w2);
  (* n1 changes byte 0, n2 changes byte 1. *)
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "xB"));
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "Ay"));
  H.drain h;
  sync_rounds h;
  (* Disjoint updates merge: nobody's write is lost. *)
  List.iter
    (fun n ->
      Alcotest.(check (option string))
        (Printf.sprintf "n%d merged" n)
        (Some "xy")
        (Option.map Bytes.to_string (H.installed_data h n)))
    [ 0; 1; 2 ]

let test_wshared_diff_only_changed_bytes () =
  let h =
    H.create ~protocol:"wshared" ~home:0 ~min_replicas:1 ~nodes
      ~initial:(Bytes.make 4096 'a') ()
  in
  ignore (H.acquire_sync h 1 Ctypes.Write);
  let page = Bytes.make 4096 'a' in
  Bytes.blit_string "tiny" 0 page 100 4;
  H.release h 1 Ctypes.Write ~data:(Some page);
  (* The wire carries a Diff whose payload is ~the 4 changed bytes, not
     the whole page. *)
  let diff_size =
    List.fold_left
      (fun acc (_, _, msg) ->
        match msg with Ctypes.Diff _ -> acc + Ctypes.msg_size msg | _ -> acc)
      0 h.H.wire
  in
  Alcotest.(check bool)
    (Printf.sprintf "diff is small (%d bytes)" diff_size)
    true
    (diff_size > 0 && diff_size < 256);
  H.drain h;
  Alcotest.(check (option string)) "home merged the tiny change" (Some "tiny")
    (Option.map
       (fun b -> Bytes.sub_string b 100 4)
       (H.installed_data h 0))

let test_wshared_no_invalidation () =
  let h = mk ~protocol:"wshared" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "zz"));
  H.drain h;
  (* n1's replica stays valid (updated in place, never invalidated). *)
  Alcotest.(check bool) "replica still valid" true (H.has_copy h 1);
  Alcotest.(check (option string)) "and fresh" (Some "zz")
    (Option.map Bytes.to_string (H.installed_data h 1))

let test_wshared_full_sync_heals_lost_patch () =
  let h = mk ~protocol:"wshared" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "v1"));
  (* A lossy link to n1: every message toward it vanishes while the rest
     of the system makes progress. *)
  while h.H.wire <> [] do
    h.H.wire <- List.filter (fun (_, dst, _) -> dst <> 1) h.H.wire;
    if h.H.wire <> [] then ignore (H.deliver_one h)
  done;
  Alcotest.(check bool) "n1 behind" true
    (Option.map Bytes.to_string (H.installed_data h 1) <> Some "v1");
  (* The home's periodic full sync heals it. *)
  sync_rounds h;
  Alcotest.(check (option string)) "healed by full sync" (Some "v1")
    (Option.map Bytes.to_string (H.installed_data h 1))

let test_eventual_staleness_observable () =
  let h = mk ~protocol:"eventual" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "new"));
  (* Before anti-entropy, n1 is behind. *)
  Alcotest.(check bool) "n1 stale" true (H.version h 1 < H.version h 2)

(* ----------------------------- Versioned --------------------------- *)

module V = Kconsistency.Versioned
module Machine = Kconsistency.Machine_intf

(* Drain the wire one message at a time, returning every message that
   transited — lets tests assert over the traffic, not just final state. *)
let drain_collect h =
  let seen = ref [] in
  while h.H.wire <> [] do
    (match h.H.wire with
    | (_, _, msg) :: _ -> seen := msg :: !seen
    | [] -> ());
    ignore (H.deliver_one h)
  done;
  List.rev !seen

let is_ownership_msg = function
  | Ctypes.Own_grant _ | Ctypes.Fetch_own _ | Ctypes.Own_return _
  | Ctypes.Invalidate _ | Ctypes.Invalidate_ack | Ctypes.Upgrade_grant _ ->
    true
  | _ -> false

let test_versioned_immediate_grants () =
  let h = mk ~protocol:"versioned" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  (* Concurrent writers both hold write locks: no exclusivity. *)
  let w1 = H.acquire h 1 Ctypes.Write in
  let w2 = H.acquire_sync h 2 Ctypes.Write in
  H.drain h;
  Alcotest.(check bool) "both granted" true
    (H.is_granted h w1 && H.is_granted h w2)

let test_versioned_fetch_on_miss () =
  let h = mk ~protocol:"versioned" () in
  ignore (H.acquire_sync h 3 Ctypes.Read);
  Alcotest.(check (option string)) "fetched from home" (Some "v0")
    (Option.map Bytes.to_string (H.installed_data h 3))

let test_versioned_lww_convergence () =
  let h = mk ~protocol:"versioned" () in
  List.iter
    (fun n ->
      ignore (H.acquire_sync h n Ctypes.Read);
      H.release h n Ctypes.Read ~data:None)
    [ 1; 2; 3 ];
  ignore (H.acquire_sync h 1 Ctypes.Write);
  H.release h 1 Ctypes.Write ~data:(Some (Bytes.of_string "from1"));
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "from2"));
  H.drain h;
  for _ = 1 to 4 do
    H.fire_all_timers h;
    H.drain h
  done;
  let versions = List.map (fun n -> H.version h n) nodes in
  let first = List.hd versions in
  Alcotest.(check bool)
    (Format.asprintf "all versions equal (%a)"
       (Format.pp_print_list Format.pp_print_int)
       versions)
    true
    (List.for_all (( = ) first) versions);
  let data =
    List.filter_map
      (fun n -> Option.map Bytes.to_string (H.installed_data h n))
      nodes
  in
  Alcotest.(check int) "everyone holds data" 4 (List.length data);
  let d0 = List.hd data in
  Alcotest.(check bool) "all data equal" true (List.for_all (( = ) d0) data)

let test_versioned_no_ping_pong () =
  (* Two writers hammer the same page through several rounds: the protocol
     must never move ownership (the whole point — CREW collapses here). *)
  let h = mk ~protocol:"versioned" () in
  List.iter
    (fun n ->
      ignore (H.acquire_sync h n Ctypes.Read);
      H.release h n Ctypes.Read ~data:None)
    [ 1; 2 ];
  ignore (drain_collect h);
  let traffic = ref [] in
  for round = 1 to 5 do
    let w1 = H.acquire h 1 Ctypes.Write in
    let w2 = H.acquire h 2 Ctypes.Write in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: both grant locally" round)
      true
      (H.is_granted h w1 && H.is_granted h w2);
    H.release h 1 Ctypes.Write
      ~data:(Some (Bytes.of_string (Printf.sprintf "a%d" round)));
    H.release h 2 Ctypes.Write
      ~data:(Some (Bytes.of_string (Printf.sprintf "b%d" round)));
    traffic := !traffic @ drain_collect h;
    H.fire_all_timers h;
    traffic := !traffic @ drain_collect h
  done;
  Alcotest.(check int) "zero ownership transfers" 0
    (List.length (List.filter is_ownership_msg !traffic))

let test_versioned_readers_never_invalidated () =
  let h = mk ~protocol:"versioned" () in
  ignore (H.acquire_sync h 1 Ctypes.Read);
  H.release h 1 Ctypes.Read ~data:None;
  ignore (H.acquire_sync h 2 Ctypes.Write);
  H.release h 2 Ctypes.Write ~data:(Some (Bytes.of_string "zz"));
  let traffic = drain_collect h in
  Alcotest.(check bool) "replica still valid" true (H.has_copy h 1);
  Alcotest.(check int) "no invalidations" 0
    (List.length
       (List.filter
          (function Ctypes.Invalidate _ -> true | _ -> false)
          traffic))

let test_versioned_snapshot_isolation () =
  (* A reader pinned at version v is untouched by the publish of v+1. *)
  let h = mk ~protocol:"versioned" () in
  let home = H.machine h 0 in
  Alcotest.(check (option string)) "v1 retained" (Some "v0")
    (Option.map (fun (b, _) -> Bytes.to_string b)
       (Machine.packed_read_at home (Some 1)));
  let r, actions =
    Machine.packed_publish home ~src:1 ~parent:1 ~expected:None
      ~payload:(Ctypes.Whole (Bytes.of_string "n2"))
  in
  H.apply h 0 actions;
  (match r with
  | Ctypes.Published v -> Alcotest.(check int) "minted v2" 2 v
  | _ -> Alcotest.fail "publish refused");
  (* The pinned read still serves the old immutable image... *)
  Alcotest.(check (option string)) "pin at 1 unchanged" (Some "v0")
    (Option.map (fun (b, _) -> Bytes.to_string b)
       (Machine.packed_read_at home (Some 1)));
  (* ...while an unpinned read sees the latest. *)
  Alcotest.(check (option string)) "latest is v2" (Some "n2")
    (Option.map (fun (b, _) -> Bytes.to_string b)
       (Machine.packed_read_at home None))

let test_versioned_diff_whole_equivalence () =
  (* Publishing dirty runs against the parent must produce the exact same
     image as publishing the whole modified page. *)
  let cfg = Ctypes.default_config ~self:0 ~home:0 in
  let base () = Bytes.make 64 'a' in
  let whole = V.create cfg (Ctypes.Start_owner (base ())) in
  let runs = V.create cfg (Ctypes.Start_owner (base ())) in
  let img = base () in
  Bytes.blit_string "XY" 0 img 10 2;
  Bytes.blit_string "Z" 0 img 50 1;
  let r1, _ =
    V.publish whole ~src:0 ~parent:1 ~expected:None
      ~payload:(Ctypes.Whole img)
  in
  let r2, _ =
    V.publish runs ~src:0 ~parent:1 ~expected:None
      ~payload:
        (Ctypes.Runs [ (10, Bytes.of_string "XY"); (50, Bytes.of_string "Z") ])
  in
  (match (r1, r2) with
  | Ctypes.Published 2, Ctypes.Published 2 -> ()
  | _ -> Alcotest.fail "both publishes should mint version 2");
  let image m =
    match V.read_at m None with
    | Some (b, _) -> Bytes.to_string b
    | None -> Alcotest.fail "no image"
  in
  Alcotest.(check string) "byte-identical" (image whole) (image runs);
  (* A diff against a version the home no longer knows is refused, not
     misapplied. *)
  let r3, _ =
    V.publish runs ~src:0 ~parent:99 ~expected:None
      ~payload:(Ctypes.Runs [ (0, Bytes.of_string "q") ])
  in
  match r3 with
  | Ctypes.Parent_gone { latest } -> Alcotest.(check int) "latest" 2 latest
  | _ -> Alcotest.fail "expected Parent_gone"

let test_versioned_cas () =
  let cfg = Ctypes.default_config ~self:0 ~home:0 in
  let m = V.create cfg (Ctypes.Start_owner (Bytes.of_string "v0")) in
  let r1, _ =
    V.publish m ~src:0 ~parent:1 ~expected:(Some 1)
      ~payload:(Ctypes.Whole (Bytes.of_string "v1"))
  in
  (match r1 with
  | Ctypes.Published 2 -> ()
  | _ -> Alcotest.fail "CAS at current version should publish");
  let r2, _ =
    V.publish m ~src:0 ~parent:1 ~expected:(Some 1)
      ~payload:(Ctypes.Whole (Bytes.of_string "lost race"))
  in
  (match r2 with
  | Ctypes.Cas_mismatch { latest } -> Alcotest.(check int) "latest" 2 latest
  | _ -> Alcotest.fail "stale CAS should be refused");
  Alcotest.(check (option string)) "refused bytes never installed"
    (Some "v1")
    (Option.map (fun (b, _) -> Bytes.to_string b) (V.read_at m None))

let test_versioned_chain_gc () =
  (* The home retains a bounded chain: publishes past the depth advance
     the watermark and expire the oldest pins. *)
  let cfg =
    { (Ctypes.default_config ~self:0 ~home:0) with Ctypes.version_chain_depth = 3 }
  in
  let m = V.create cfg (Ctypes.Start_owner (Bytes.of_string "g1")) in
  for i = 2 to 6 do
    match
      V.publish m ~src:0 ~parent:(i - 1) ~expected:None
        ~payload:(Ctypes.Whole (Bytes.of_string (Printf.sprintf "g%d" i)))
    with
    | Ctypes.Published v, _ -> Alcotest.(check int) "monotonic mint" i v
    | _ -> Alcotest.fail "publish refused"
  done;
  Alcotest.(check int) "chain bounded" 3 (V.chain_depth m);
  Alcotest.(check int) "watermark advanced" 4 (V.watermark m);
  Alcotest.(check (option string)) "old pin expired" None
    (Option.map (fun (b, _) -> Bytes.to_string b) (V.read_at m (Some 2)));
  Alcotest.(check (option string)) "watermark version readable" (Some "g4")
    (Option.map (fun (b, _) -> Bytes.to_string b) (V.read_at m (Some 4)));
  Alcotest.(check (option string)) "latest readable" (Some "g6")
    (Option.map (fun (b, _) -> Bytes.to_string b) (V.read_at m None))

(* ---------------- Batched vs per-page delivery equivalence ---------- *)

(* RPC coalescing changes only envelope boundaries: a sharer that used to
   receive N per-page invalidations as N unicasts now gets them in one
   batch, i.e. back to back with nothing interleaved. The machines must
   reach the same final states either way. This drives a three-page CREW
   conversation (read fan-out, then a home write that invalidates every
   sharer on every page) under both delivery orders and compares the full
   observable state. *)
let multi_page_fingerprint ~batched =
  let pages =
    List.init 3 (fun i ->
        H.create ~protocol:"crew" ~home:0 ~min_replicas:1 ~nodes
          ~initial:(Bytes.make 4 (Char.chr (Char.code 'a' + i)))
          ())
  in
  (* Two remote sharers cache every page. *)
  List.iter (fun h -> ignore (H.acquire h 1 Ctypes.Read)) pages;
  List.iter (fun h -> ignore (H.acquire h 2 Ctypes.Read)) pages;
  H.multi_drain ~batched pages;
  List.iter (fun h -> H.release h 1 Ctypes.Read ~data:None) pages;
  List.iter (fun h -> H.release h 2 Ctypes.Read ~data:None) pages;
  H.multi_drain ~batched pages;
  (* The home write-acquires every page: a multi-page invalidation
     fan-out toward both sharers. *)
  let reqs = List.map (fun h -> H.acquire h 0 Ctypes.Write) pages in
  H.multi_drain ~batched pages;
  List.iteri
    (fun i (h, req) ->
      if not (H.is_granted h req) then
        Alcotest.failf "page %d write not granted (batched=%b)" i batched)
    (List.combine pages reqs);
  List.iter
    (fun h ->
      match H.crew_invariant_violation h with
      | Some v -> Alcotest.failf "CREW violation (batched=%b): %s" batched v
      | None -> ())
    pages;
  List.concat_map
    (fun h ->
      List.map
        (fun n ->
          ( H.state h n,
            H.locks h n,
            H.has_copy h n,
            H.version h n,
            Option.map Bytes.to_string (H.installed_data h n) ))
        nodes)
    pages

let test_batched_invalidate_equivalence () =
  let per_page = multi_page_fingerprint ~batched:false in
  let batched = multi_page_fingerprint ~batched:true in
  Alcotest.(check int) "same observation count" (List.length per_page)
    (List.length batched);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "state diverged at observation %d under batching" i)
    (List.combine per_page batched)

let () =
  Alcotest.run "kconsistency"
    [
      ( "crew",
        [
          Alcotest.test_case "home local ops" `Quick test_crew_home_local_ops;
          Alcotest.test_case "remote read" `Quick test_crew_remote_read;
          Alcotest.test_case "concurrent readers" `Quick test_crew_concurrent_readers;
          Alcotest.test_case "write invalidates" `Quick
            test_crew_write_invalidates_readers;
          Alcotest.test_case "write waits for readers" `Quick
            test_crew_write_waits_for_active_readers;
          Alcotest.test_case "reader waits for writer" `Quick
            test_crew_reader_waits_for_writer;
          Alcotest.test_case "ownership migrates" `Quick test_crew_ownership_migrates;
          Alcotest.test_case "local re-grant" `Quick test_crew_local_write_read_cycle;
          Alcotest.test_case "eviction returns ownership" `Quick
            test_crew_eviction_returns_ownership;
          Alcotest.test_case "shared eviction" `Quick test_crew_shared_eviction_notifies;
          Alcotest.test_case "abort" `Quick test_crew_abort_unblocks;
          Alcotest.test_case "batched invalidate equivalence" `Quick
            test_batched_invalidate_equivalence;
          Alcotest.test_case "min replicas" `Quick test_crew_min_replicas;
          Alcotest.test_case "owner crash fail-over" `Quick
            test_crew_owner_crash_failover;
        ] );
      ( "release",
        [
          Alcotest.test_case "stale reads allowed" `Quick
            test_release_stale_reads_allowed;
          Alcotest.test_case "write token serialises" `Quick
            test_release_write_token_serialises;
          Alcotest.test_case "update fan-out" `Quick test_release_update_fanout;
          Alcotest.test_case "fetch on miss" `Quick test_release_no_copy_fetches;
          Alcotest.test_case "writer crash reclaim" `Quick
            test_release_writer_crash_reclaims_token;
        ] );
      ( "eventual",
        [
          Alcotest.test_case "immediate grants" `Quick test_eventual_immediate_grants;
          Alcotest.test_case "LWW convergence" `Quick test_eventual_convergence_lww;
          Alcotest.test_case "staleness observable" `Quick
            test_eventual_staleness_observable;
        ] );
      ( "versioned",
        [
          Alcotest.test_case "immediate grants" `Quick
            test_versioned_immediate_grants;
          Alcotest.test_case "fetch on miss" `Quick test_versioned_fetch_on_miss;
          Alcotest.test_case "LWW convergence" `Quick
            test_versioned_lww_convergence;
          Alcotest.test_case "no ownership ping-pong" `Quick
            test_versioned_no_ping_pong;
          Alcotest.test_case "readers never invalidated" `Quick
            test_versioned_readers_never_invalidated;
          Alcotest.test_case "snapshot isolation" `Quick
            test_versioned_snapshot_isolation;
          Alcotest.test_case "diff == whole image" `Quick
            test_versioned_diff_whole_equivalence;
          Alcotest.test_case "CAS" `Quick test_versioned_cas;
          Alcotest.test_case "chain GC" `Quick test_versioned_chain_gc;
        ] );
      ( "write-shared",
        [
          Alcotest.test_case "disjoint writers merge" `Quick
            test_wshared_concurrent_disjoint_writers;
          Alcotest.test_case "diffs carry only changes" `Quick
            test_wshared_diff_only_changed_bytes;
          Alcotest.test_case "no invalidation" `Quick test_wshared_no_invalidation;
          Alcotest.test_case "full sync heals loss" `Quick
            test_wshared_full_sync_heals_lost_patch;
        ] );
    ]
