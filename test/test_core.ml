(* Unit tests for the core building blocks: attributes, region descriptors,
   region directory, page directory, cluster-manager state, layout. *)

module Attr = Khazana.Attr
module Region = Khazana.Region
module Gaddr = Kutil.Gaddr
module Ctypes = Kconsistency.Types

let u128 = Alcotest.testable Kutil.U128.pp Kutil.U128.equal
let addr n = Gaddr.of_int n

let mk_attr ?world ?min_replicas ?page_size ?level ?protocol () =
  Attr.make ?world ?min_replicas ?page_size ?level ?protocol ~owner:1 ()

let mk_region ?(base = 0x10000) ?(len = 8192) ?attr () =
  let attr = match attr with Some a -> a | None -> mk_attr () in
  Region.make ~base:(addr base) ~len ~attr ~home:2

(* ------------------------------- Attr ------------------------------ *)

let test_attr_defaults () =
  let a = mk_attr () in
  Alcotest.(check string) "protocol" "crew" a.Attr.protocol;
  Alcotest.(check int) "page" 4096 a.Attr.page_size;
  Alcotest.(check int) "replicas" 1 a.Attr.min_replicas

let test_attr_level_protocol_defaults () =
  Alcotest.(check string) "release" "release"
    (mk_attr ~level:Attr.Release ()).Attr.protocol;
  Alcotest.(check string) "eventual" "eventual"
    (mk_attr ~level:Attr.Eventual ()).Attr.protocol

let test_attr_validation () =
  Alcotest.(check bool) "bad page size" true
    (try ignore (mk_attr ~page_size:1000 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad replicas" true
    (try ignore (mk_attr ~min_replicas:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown protocol" true
    (try ignore (mk_attr ~protocol:"paxos" ()); false
     with Invalid_argument _ -> true);
  (* The paper allows larger power-of-two pages. *)
  Alcotest.(check int) "16k ok" 16384 (mk_attr ~page_size:16384 ()).Attr.page_size

let test_attr_acl () =
  let a = mk_attr ~world:Attr.Read_only () in
  Alcotest.(check bool) "owner writes" true (Attr.allows a ~principal:1 Ctypes.Write);
  Alcotest.(check bool) "world reads" true (Attr.allows a ~principal:9 Ctypes.Read);
  Alcotest.(check bool) "world no write" false (Attr.allows a ~principal:9 Ctypes.Write);
  let b = mk_attr ~world:Attr.No_access () in
  Alcotest.(check bool) "no access" false (Attr.allows b ~principal:9 Ctypes.Read);
  Alcotest.(check bool) "owner still ok" true (Attr.allows b ~principal:1 Ctypes.Write)

let test_attr_codec () =
  let a = mk_attr ~world:Attr.Read_only ~min_replicas:3 ~level:Attr.Eventual () in
  let e = Kutil.Codec.encoder () in
  Attr.encode e a;
  let a' = Attr.decode (Kutil.Codec.decoder (Kutil.Codec.to_bytes e)) in
  Alcotest.(check string) "protocol" a.Attr.protocol a'.Attr.protocol;
  Alcotest.(check int) "replicas" 3 a'.Attr.min_replicas;
  Alcotest.(check bool) "world" true (a'.Attr.world = Attr.Read_only)

(* ------------------------------ Region ----------------------------- *)

let test_region_validation () =
  Alcotest.(check bool) "misaligned base" true
    (try ignore (Region.make ~base:(addr 100) ~len:4096 ~attr:(mk_attr ()) ~home:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unrounded length" true
    (try ignore (Region.make ~base:(addr 4096) ~len:1000 ~attr:(mk_attr ()) ~home:0); false
     with Invalid_argument _ -> true)

let test_region_geometry () =
  let r = mk_region ~base:8192 ~len:12288 () in
  Alcotest.(check int) "pages" 3 (Region.page_count r);
  Alcotest.(check (list bool)) "page list aligned" [ true; true; true ]
    (List.map (fun p -> Gaddr.is_page_aligned p ~page_size:4096) (Region.pages r));
  Alcotest.(check bool) "contains start" true (Region.contains r (addr 8192));
  Alcotest.(check bool) "contains last" true (Region.contains r (addr 20479));
  Alcotest.(check bool) "excludes end" false (Region.contains r (addr 20480));
  Alcotest.(check bool) "range in" true (Region.contains_range r (addr 9000) ~len:100);
  Alcotest.(check bool) "range out" false
    (Region.contains_range r (addr 20000) ~len:1000);
  Alcotest.check u128 "page_of" (addr 12288) (Region.page_of r (addr 13000))

let test_region_codec () =
  let r = mk_region () in
  let e = Kutil.Codec.encoder () in
  Region.encode e r;
  let r' = Region.decode (Kutil.Codec.decoder (Kutil.Codec.to_bytes e)) in
  Alcotest.check u128 "base" r.Region.base r'.Region.base;
  Alcotest.(check int) "len" r.Region.len r'.Region.len;
  Alcotest.(check int) "home" r.Region.home r'.Region.home;
  Alcotest.(check bool) "state" true (r'.Region.state = Region.Reserved);
  let r'' = Region.allocated r in
  Alcotest.(check bool) "allocated" true (r''.Region.state = Region.Allocated)

(* -------------------------- Region directory ----------------------- *)

let test_rdir_containing_lookup () =
  let rd = Khazana.Region_directory.create ~capacity:4 in
  Khazana.Region_directory.put rd (mk_region ~base:0x10000 ~len:8192 ());
  Khazana.Region_directory.put rd (mk_region ~base:0x20000 ~len:4096 ());
  (match Khazana.Region_directory.find rd (addr 0x11000) with
   | Some r -> Alcotest.check u128 "right region" (addr 0x10000) r.Region.base
   | None -> Alcotest.fail "miss");
  Alcotest.(check bool) "gap misses" true
    (Khazana.Region_directory.find rd (addr 0x18000) = None);
  Alcotest.(check int) "hit count" 1 (Khazana.Region_directory.hits rd);
  Alcotest.(check int) "miss count" 1 (Khazana.Region_directory.misses rd)

let test_rdir_lru_eviction () =
  let rd = Khazana.Region_directory.create ~capacity:2 in
  Khazana.Region_directory.put rd (mk_region ~base:0x10000 ());
  Khazana.Region_directory.put rd (mk_region ~base:0x20000 ());
  ignore (Khazana.Region_directory.find rd (addr 0x10000));
  Khazana.Region_directory.put rd (mk_region ~base:0x30000 ());
  Alcotest.(check int) "capped" 2 (Khazana.Region_directory.length rd);
  Alcotest.(check bool) "lru evicted" true
    (Khazana.Region_directory.find rd (addr 0x20000) = None);
  Alcotest.(check bool) "recent kept" true
    (Khazana.Region_directory.find rd (addr 0x10000) <> None)

let test_rdir_invalidate () =
  let rd = Khazana.Region_directory.create ~capacity:4 in
  Khazana.Region_directory.put rd (mk_region ~base:0x10000 ~len:8192 ());
  Khazana.Region_directory.invalidate_containing rd (addr 0x11500);
  Alcotest.(check int) "gone" 0 (Khazana.Region_directory.length rd)

let test_rdir_replace_updates () =
  let rd = Khazana.Region_directory.create ~capacity:4 in
  Khazana.Region_directory.put rd (mk_region ~base:0x10000 ());
  let updated = Region.allocated (mk_region ~base:0x10000 ()) in
  Khazana.Region_directory.put rd updated;
  Alcotest.(check int) "no duplicate" 1 (Khazana.Region_directory.length rd);
  match Khazana.Region_directory.find rd (addr 0x10000) with
  | Some r -> Alcotest.(check bool) "newest wins" true (r.Region.state = Region.Allocated)
  | None -> Alcotest.fail "miss"

(* --------------------------- Page directory ------------------------ *)

let test_pdir_basic () =
  let pd = Khazana.Page_directory.create () in
  let e =
    Khazana.Page_directory.ensure pd ~page:(addr 4096) ~region_base:(addr 4096)
      ~homed_here:true
  in
  Alcotest.(check (list int)) "starts empty" [] e.Khazana.Page_directory.sharers;
  Khazana.Page_directory.set_sharers pd (addr 4096) [ 1; 2 ];
  (match Khazana.Page_directory.find pd (addr 4096) with
   | Some e -> Alcotest.(check (list int)) "sharers" [ 1; 2 ] e.Khazana.Page_directory.sharers
   | None -> Alcotest.fail "miss");
  (* ensure is idempotent *)
  let e2 =
    Khazana.Page_directory.ensure pd ~page:(addr 4096) ~region_base:(addr 4096)
      ~homed_here:true
  in
  Alcotest.(check (list int)) "kept" [ 1; 2 ] e2.Khazana.Page_directory.sharers

(* A crash wipes the whole directory (it lives in memory); the homed
   entries come back through the persistent-snapshot codec that WAL
   checkpoints embed, hints do not. *)
let test_pdir_crash_wipes_and_snapshot_restores () =
  let pd = Khazana.Page_directory.create () in
  ignore (Khazana.Page_directory.ensure pd ~page:(addr 0) ~region_base:(addr 0) ~homed_here:true);
  Khazana.Page_directory.set_sharers pd (addr 0) [ 2; 5 ];
  ignore (Khazana.Page_directory.ensure pd ~page:(addr 4096) ~region_base:(addr 4096) ~homed_here:false);
  let enc = Kutil.Codec.encoder () in
  Khazana.Page_directory.encode_persistent pd enc;
  let snap = Kutil.Codec.to_bytes enc in
  Khazana.Page_directory.crash pd;
  Alcotest.(check int) "crash wipes everything" 0 (Khazana.Page_directory.length pd);
  Khazana.Page_directory.decode_persistent pd (Kutil.Codec.decoder snap);
  (match Khazana.Page_directory.find pd (addr 0) with
   | Some e ->
     Alcotest.(check bool) "homed flag" true e.Khazana.Page_directory.homed_here;
     Alcotest.(check (list int)) "sharers restored" [ 2; 5 ]
       e.Khazana.Page_directory.sharers
   | None -> Alcotest.fail "homed entry not restored");
  Alcotest.(check bool) "hints not in snapshot" true
    (Khazana.Page_directory.find pd (addr 4096) = None)

(* ------------------------------ Cluster ---------------------------- *)

let test_cluster_chunks_disjoint () =
  let cm = Khazana.Cluster.create ~cluster_id:0 in
  let b1, l1 = Khazana.Cluster.next_chunk cm in
  let b2, _ = Khazana.Cluster.next_chunk cm in
  Alcotest.check u128 "sequential" (Gaddr.add_int b1 l1) b2;
  Alcotest.(check int) "granted" 2 (Khazana.Cluster.chunks_granted cm);
  (* Different clusters never overlap. *)
  let cm2 = Khazana.Cluster.create ~cluster_id:1 in
  let b3, _ = Khazana.Cluster.next_chunk cm2 in
  Alcotest.(check bool) "cluster slices apart" true
    (Kutil.U128.compare b3 (Gaddr.add_int b2 Khazana.Layout.chunk_size) > 0)

let test_cluster_hints () =
  let cm = Khazana.Cluster.create ~cluster_id:0 in
  let r = mk_region ~base:0x50000 ~len:8192 () in
  Khazana.Cluster.record_report cm ~node:3 ~regions:[ (r.Region.base, r) ]
    ~free_bytes:1000;
  (match Khazana.Cluster.lookup cm (addr 0x51000) with
   | Some _, holders -> Alcotest.(check (list int)) "holder" [ 3 ] holders
   | None, _ -> Alcotest.fail "hint missing");
  Alcotest.(check (list (pair int int))) "free pool" [ (3, 1000) ]
    (Khazana.Cluster.free_bytes_hint cm);
  (* A refreshed report replaces the old claims. *)
  Khazana.Cluster.record_report cm ~node:3 ~regions:[] ~free_bytes:500;
  Alcotest.(check bool) "claims dropped" true
    (fst (Khazana.Cluster.lookup cm (addr 0x51000)) = None)

let test_cluster_forget_node () =
  let cm = Khazana.Cluster.create ~cluster_id:0 in
  let r = mk_region ~base:0x50000 () in
  Khazana.Cluster.record_report cm ~node:3 ~regions:[ (r.Region.base, r) ] ~free_bytes:0;
  Khazana.Cluster.record_report cm ~node:4 ~regions:[ (r.Region.base, r) ] ~free_bytes:0;
  Khazana.Cluster.forget_node cm 3;
  (match Khazana.Cluster.lookup cm (addr 0x50000) with
   | Some _, holders -> Alcotest.(check (list int)) "only n4" [ 4 ] holders
   | None, _ -> Alcotest.fail "hint lost entirely");
  Khazana.Cluster.forget_node cm 4;
  Alcotest.(check bool) "now empty" true
    (fst (Khazana.Cluster.lookup cm (addr 0x50000)) = None)

(* ------------------------------ Layout ----------------------------- *)

let test_layout_constants () =
  Alcotest.check u128 "map at zero" Gaddr.zero Khazana.Layout.map_base;
  Alcotest.check u128 "page addr" (addr 8192) (Khazana.Layout.map_page_addr 2);
  Alcotest.(check bool) "data above map" true
    (Kutil.U128.compare Khazana.Layout.data_base
       (addr Khazana.Layout.map_len) > 0);
  let r = Khazana.Layout.map_region ~bootstrap_node:0 in
  Alcotest.(check bool) "map allocated" true (r.Region.state = Region.Allocated);
  Alcotest.(check string) "map protocol" "release" r.Region.attr.Attr.protocol

let test_wire_sizes_positive () =
  let reqs =
    [
      Khazana.Wire.Get_descriptor { addr = addr 0 };
      Khazana.Wire.Chunk_request;
      Khazana.Wire.Ping;
      Khazana.Wire.Cm_msg
        { page = addr 0; region_base = addr 0;
          body = Ctypes.Read_grant { data = Bytes.create 4096; version = 1; fence = 0 } };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Khazana.Wire.request_kind r ^ " has positive size")
        true
        (Khazana.Wire.request_size r > 0))
    reqs;
  (* Data-bearing messages dominate. *)
  Alcotest.(check bool) "grant carries page" true
    (Khazana.Wire.request_size (List.nth reqs 3) > 4096)

let () =
  Alcotest.run "core-units"
    [
      ( "attr",
        [
          Alcotest.test_case "defaults" `Quick test_attr_defaults;
          Alcotest.test_case "level->protocol" `Quick test_attr_level_protocol_defaults;
          Alcotest.test_case "validation" `Quick test_attr_validation;
          Alcotest.test_case "acl" `Quick test_attr_acl;
          Alcotest.test_case "codec" `Quick test_attr_codec;
        ] );
      ( "region",
        [
          Alcotest.test_case "validation" `Quick test_region_validation;
          Alcotest.test_case "geometry" `Quick test_region_geometry;
          Alcotest.test_case "codec" `Quick test_region_codec;
        ] );
      ( "region_directory",
        [
          Alcotest.test_case "containing lookup" `Quick test_rdir_containing_lookup;
          Alcotest.test_case "lru eviction" `Quick test_rdir_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_rdir_invalidate;
          Alcotest.test_case "replace" `Quick test_rdir_replace_updates;
        ] );
      ( "page_directory",
        [
          Alcotest.test_case "basic" `Quick test_pdir_basic;
          Alcotest.test_case "crash" `Quick test_pdir_crash_wipes_and_snapshot_restores;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "chunks" `Quick test_cluster_chunks_disjoint;
          Alcotest.test_case "hints" `Quick test_cluster_hints;
          Alcotest.test_case "forget node" `Quick test_cluster_forget_node;
        ] );
      ( "layout+wire",
        [
          Alcotest.test_case "layout" `Quick test_layout_constants;
          Alcotest.test_case "wire sizes" `Quick test_wire_sizes_positive;
        ] );
    ]
