(* Failure handling (paper §3.5): acquire-class errors reflected after
   retries; release-class operations retried in the background; minimum
   replica counts raise availability; crash/recovery semantics. *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr
module Ctypes = Kconsistency.Types

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "daemon error: %s" (Daemon.error_to_string e)

let bytes_s = Bytes.of_string

(* A 1-cluster, 6-node system so cluster-manager and bootstrap roles stay
   on node 0 and the victims can be 1..5. *)
let mk ?(seed = 42) () = System.create ~seed ~nodes_per_cluster:6 ~clusters:1 ()

let test_unreachable_home_times_out () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "data"));
        r)
  in
  System.crash sys 1;
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      match Client.read_bytes c2 ~addr:region.Region.base 4 with
      | Error (`Timeout | `Unavailable _) -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Daemon.error_to_string e)
      | Ok _ -> Alcotest.fail "read served by a crashed home with no replicas")

let test_min_replicas_survive_home_read_path () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:3 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "precious"));
        (* Let replication pushes settle. *)
        Ksim.Fiber.sleep (Ksim.Time.sec 1);
        r)
  in
  (* Count replica sites. *)
  let holders =
    List.filter
      (fun n -> Daemon.holds_page (System.daemon sys n) region.Region.base)
      (List.init 6 Fun.id)
  in
  Alcotest.(check bool)
    (Printf.sprintf "3+ replicas exist (%d)" (List.length holders))
    true
    (List.length holders >= 3);
  (* A reader that already has a copy keeps working when others die. *)
  let survivor =
    match List.filter (fun n -> n <> 1 && n <> 0) holders with
    | s :: _ -> s
    | [] -> Alcotest.fail "no replica outside home"
  in
  let cs = System.client sys survivor () in
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes cs ~addr:region.Region.base 8) in
      Alcotest.(check string) "local replica readable" "precious" (Bytes.to_string b))

let test_owner_crash_data_recovered_from_replicas () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:2 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "v-one"));
        r)
  in
  (* n2 becomes the owner, then dies. The home (n1) must recover the data
     for a later reader from its backup/replicas. *)
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c2 ~addr:region.Region.base (bytes_s "v-two")));
  System.crash sys 2;
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      match Client.read_bytes c3 ~addr:region.Region.base 5 with
      | Ok b ->
        (* The CREW manager recovers the latest data that passed through
           it: v-two travelled home with the release Update... in CREW the
           write stays with the owner, so the backup may be v-one or
           v-two depending on what reached the home. Either way the page
           stays *available*. *)
        Alcotest.(check bool) "page still available" true
          (Bytes.length b = 5)
      | Error e ->
        Alcotest.failf "page unavailable after owner crash: %s"
          (Daemon.error_to_string e))

let test_partition_blocks_then_heals () =
  let sys = System.create ~seed:42 ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "island"));
        r)
  in
  System.partition sys [ 0; 1; 2 ] [ 3; 4; 5 ];
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      match Client.read_bytes c4 ~addr:region.Region.base 6 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read across a partition");
  System.heal sys;
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c4 ~addr:region.Region.base 6) in
      Alcotest.(check string) "works after heal" "island" (Bytes.to_string b))

let test_release_ops_retry_in_background () =
  (* "Errors encountered while releasing resources are not [reflected].
     Instead, the Khazana system keeps trying the operation in the
     background until it succeeds." *)
  let sys = System.create ~seed:42 ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "x"));
        r)
  in
  (* n4 learns about the region, then gets partitioned from its home. *)
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes c4 ~addr:region.Region.base 1)));
  System.partition sys [ 0; 1; 2 ] [ 3; 4; 5 ];
  (* free from the wrong side of the partition returns immediately. *)
  let t0 = System.now sys in
  System.run_fiber sys (fun () -> Client.free c4 region.Region.base);
  Alcotest.(check bool) "free returned promptly" true
    (System.now sys - t0 < Ksim.Time.ms 100);
  (* While partitioned the home still has storage allocated. *)
  Alcotest.(check bool) "not yet freed" true
    (Daemon.holds_page (System.daemon sys 1) region.Region.base);
  (* Heal: the background retry eventually lands. *)
  System.heal sys;
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  Alcotest.(check bool) "freed after heal" false
    (Daemon.holds_page (System.daemon sys 1) region.Region.base)

let test_crash_rejects_inflight_ops () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "zz"));
        r)
  in
  (* n2 starts a read; n1 (home+owner) dies mid-flight. *)
  let c2 = System.client sys 2 () in
  let failed = ref false in
  Ksim.Fiber.spawn (System.engine sys) (fun () ->
      match Client.read_bytes c2 ~addr:region.Region.base 2 with
      | Error _ -> failed := true
      | Ok _ -> ());
  ignore
    (Ksim.Engine.schedule (System.engine sys) ~after:(Ksim.Time.us 500)
       (fun () -> System.crash sys 1));
  System.run_until_quiet ~limit:(Ksim.Time.sec 30) sys;
  Alcotest.(check bool) "op reflected an error" true !failed

let test_crash_recover_serves_from_disk () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "durable"));
        r)
  in
  (* Force the page out of RAM onto disk so it survives the crash. *)
  let store = Daemon.store (System.daemon sys 1) in
  System.run_fiber sys (fun () ->
      for i = 0 to 300 do
        Kstorage.Page_store.write_immediate store
          (Kutil.Gaddr.of_int (0x7000_0000 + (i * 4096)))
          (Bytes.create 8) ~dirty:false
      done);
  Alcotest.(check bool) "page demoted to disk" true
    (Kstorage.Page_store.where store region.Region.base
     = Some Kstorage.Page_store.Disk);
  System.crash sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  System.recover sys 1;
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c2 ~addr:region.Region.base 7) in
      Alcotest.(check string) "recovered from disk" "durable" (Bytes.to_string b))

let test_home_recover_restores_replica_floor () =
  (* Crash the *home* of a min_replicas:3 region, bring it back, and do
     nothing else: the persistent page directory plus the repair loop must
     re-materialise the home role from disk and push the replica count back
     to the floor — no fresh client write required. *)
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:3 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "evermore"));
        Ksim.Fiber.sleep (Ksim.Time.sec 1);
        r)
  in
  (* Force the page out of RAM so only the disk tier survives the crash. *)
  let store = Daemon.store (System.daemon sys 1) in
  System.run_fiber sys (fun () ->
      for i = 0 to 300 do
        Kstorage.Page_store.write_immediate store
          (Kutil.Gaddr.of_int (0x7000_0000 + (i * 4096)))
          (Bytes.create 8) ~dirty:false
      done);
  System.crash sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
  System.recover sys 1;
  System.run_until_quiet ~limit:(Ksim.Time.sec 10) sys;
  let holders =
    List.filter
      (fun n -> Daemon.holds_page (System.daemon sys n) region.Region.base)
      (List.init 6 Fun.id)
  in
  Alcotest.(check bool)
    (Printf.sprintf "replica floor restored (%d holders)" (List.length holders))
    true
    (List.length holders >= 3);
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c2 ~addr:region.Region.base 8) in
      Alcotest.(check string) "re-served after recover" "evermore"
        (Bytes.to_string b))

let test_cluster_walk_survives_map_outage () =
  (* §3.1: "If the set of nodes specified in a given region's address map
     entry is stale, the region can still be located using a cluster-walk
     algorithm." Here the whole map goes dark (its bootstrap home crashes)
     and a cold remote node still finds the region by walking the cluster
     managers. *)
  (* Three clusters: the region's home is in cluster 0; cluster 1 caches
     it; the bootstrap (node 0, also cluster 0's manager) then dies, taking
     the address map down. A cold node in cluster 2 must find the region
     via cluster 1's manager. *)
  let sys = System.create ~seed:42 ~nodes_per_cluster:3 ~clusters:3 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "found me"));
        (* A cluster-1 node reads it, so cluster 1's manager (node 3) will
           learn about it from that node's periodic report. *)
        let c4 = System.client sys 4 () in
        ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 8));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  System.crash sys 0;
  let d7 = System.daemon sys 7 in
  Daemon.reset_lookup_stats d7;
  let c7 = System.client sys 7 () in
  System.run_fiber sys (fun () ->
      let b = ok (Client.read_bytes c7 ~addr:region.Region.base 8) in
      Alcotest.(check string) "read despite map outage" "found me"
        (Bytes.to_string b));
  let s = Daemon.lookup_stats d7 in
  Alcotest.(check bool) "resolved by cluster walk" true (s.Daemon.cluster_walks >= 1)

let test_lossy_wan_ops_still_complete () =
  (* A lossy WAN: the retry machinery at every layer (CM re-sends, RPC
     timeouts, locate retries, daemon lock retries) must absorb the loss —
     the paper's "repeatedly tried until they succeed" in action. *)
  let sys = System.create ~seed:9 ~nodes_per_cluster:3 ~clusters:2 () in
  Knet.Topology.set_wan
    (System.topology sys)
    { Knet.Topology.wan_default with loss = 0.10 };
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "00"));
        r)
  in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      for i = 1 to 15 do
        let v = Printf.sprintf "%02d" i in
        ok (Client.write_bytes c4 ~addr:region.Region.base (bytes_s v));
        let b = ok (Client.read_bytes c1 ~addr:region.Region.base 2) in
        Alcotest.(check string)
          (Printf.sprintf "round %d consistent" i)
          v (Bytes.to_string b)
      done);
  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  Alcotest.(check bool) "losses actually happened" true (stats.dropped > 0)

let test_availability_sweep_shape () =
  (* E4's core claim in miniature: with more min_replicas, more regions
     survive the crash of a random subset of nodes. *)
  let survivors_with replicas =
    let sys = mk ~seed:7 () in
    let regions =
      System.run_fiber sys (fun () ->
          List.map
            (fun i ->
              let node = 1 + (i mod 5) in
              let c = System.client sys node () in
              let attr = Attr.make ~owner:node ~min_replicas:replicas () in
              let r = ok (Client.create_region c ~attr 4096) in
              ok (Client.write_bytes c ~addr:r.Region.base (bytes_s "payload!"));
              r)
            (List.init 10 Fun.id))
    in
    System.run_fiber sys (fun () -> Ksim.Fiber.sleep (Ksim.Time.sec 1));
    (* Kill two of the five non-bootstrap nodes. *)
    System.crash sys 2;
    System.crash sys 4;
    let c0 = System.client sys 0 () in
    List.length
      (List.filter
         (fun (r : Region.t) ->
           System.run_fiber sys (fun () ->
               match Client.read_bytes c0 ~addr:r.Region.base 8 with
               | Ok _ -> true
               | Error _ -> false))
         regions)
  in
  let single = survivors_with 1 in
  let triple = survivors_with 3 in
  Alcotest.(check bool)
    (Printf.sprintf "replicas help: %d/10 vs %d/10 readable" single triple)
    true (triple > single);
  Alcotest.(check bool) "replication rescues most regions" true (triple >= 8)

let () =
  Alcotest.run "failures"
    [
      ( "failures",
        [
          Alcotest.test_case "unreachable home" `Quick test_unreachable_home_times_out;
          Alcotest.test_case "min replicas materialise" `Quick
            test_min_replicas_survive_home_read_path;
          Alcotest.test_case "owner crash availability" `Quick
            test_owner_crash_data_recovered_from_replicas;
          Alcotest.test_case "partition + heal" `Quick test_partition_blocks_then_heals;
          Alcotest.test_case "release ops background-retry" `Quick
            test_release_ops_retry_in_background;
          Alcotest.test_case "crash rejects in-flight" `Quick
            test_crash_rejects_inflight_ops;
          Alcotest.test_case "crash/recover from disk" `Quick
            test_crash_recover_serves_from_disk;
          Alcotest.test_case "home recover restores replica floor" `Quick
            test_home_recover_restores_replica_floor;
          Alcotest.test_case "cluster walk survives map outage" `Quick
            test_cluster_walk_survives_map_outage;
          Alcotest.test_case "lossy WAN absorbed" `Quick
            test_lossy_wan_ops_still_complete;
          Alcotest.test_case "availability sweep shape" `Slow
            test_availability_sweep_shape;
        ] );
    ]
