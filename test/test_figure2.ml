(* Figure 2 reproduction: the message sequence behind a cold <lock, fetch>
   of page p at node A when node B owns the page.

   Paper steps:
     1      A obtains the region descriptor for p's enclosing region
     2,3    (optional) via an address-map lookup
     4      p is looked up in the page directory
     5      the CM is invoked to grant the lock
     6      the CM asks its peer on B for credentials
     7,8,9  B's CM directs its daemon to supply a copy of p to A
     10     ownership/credentials granted to A
     11     A's CM grants the lock
     12,13  A supplies the locked copy to the requestor from local storage

   The wire-visible part of that flow here, for a cold write-mode lock with
   home/owner on B, is:
     cluster_lookup / map-page reads  (steps 1-3)
     cm.write_req   A -> B            (step 6)
     cm.fetch_own   B -> B            (steps 7,8: CM directs local daemon)
     cm.own_grant   B -> A            (steps 9,10)
     cm.done        A -> B            (completion ack)
   after which the lock is granted locally (11) and the read served from
   local storage (12,13). *)

module System = Khazana.System
module Client = Khazana.Client
module Region = Khazana.Region
module Ctypes = Kconsistency.Types

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "daemon error: %s" (Khazana.Daemon.error_to_string e)

type ev = { src : int; dst : int; kind : string }

let record_trace sys =
  let events = ref [] in
  Khazana.Wire.Sim.Net.set_trace (System.net sys)
    (fun _time ~src ~dst msg ->
      events := { src; dst; kind = Khazana.Wire.Sim.Rpc.Msg.kind msg } :: !events);
  fun () -> List.rev !events

let index_of events p =
  let rec go i = function
    | [] -> None
    | e :: rest -> if p e then Some i else go (i + 1) rest
  in
  go 0 events

let test_lock_fetch_sequence () =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let node_a = 4 and node_b = 1 in
  let cb = System.client sys node_b () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cb 4096) in
        (* B writes, making it unambiguous owner with private data. *)
        ok (Client.write_bytes cb ~addr:r.Region.base (Bytes.of_string "owned by B"));
        r)
  in
  let get_events = record_trace sys in
  let ca = System.client sys node_a () in
  let addr = region.Region.base in
  System.run_fiber sys (fun () ->
      (* The <lock, fetch> pair: write lock + read under it. *)
      let ctx = ok (Client.lock ca ~addr ~len:10 Ctypes.Write) in
      let b = ok (Client.read ca ctx ~addr ~len:10) in
      Alcotest.(check string) "step 12-13: data served locally" "owned by B"
        (Bytes.to_string b);
      Client.unlock ca ctx);
  let events = get_events () in
  let find name p =
    match index_of events p with
    | Some i -> i
    | None ->
      Alcotest.failf "missing %s in trace: %s" name
        (String.concat ", "
           (List.map (fun e -> Printf.sprintf "n%d->n%d %s" e.src e.dst e.kind) events))
  in
  let descriptor_step =
    find "descriptor lookup"
      (fun e ->
        e.src = node_a
        && (e.kind = "cluster_lookup" || e.kind = "get_descriptor"
           || e.kind = "cm.read_req"))
  in
  let write_req =
    find "cm.write_req A->B" (fun e ->
        e.kind = "cm.write_req" && e.src = node_a && e.dst = node_b)
  in
  let fetch_own =
    find "cm.fetch_own B->B" (fun e ->
        e.kind = "cm.fetch_own" && e.src = node_b && e.dst = node_b)
  in
  let own_grant =
    find "cm.own_grant B->A" (fun e ->
        e.kind = "cm.own_grant" && e.src = node_b && e.dst = node_a)
  in
  let done_ack =
    find "cm.done A->B" (fun e ->
        e.kind = "cm.done" && e.src = node_a && e.dst = node_b)
  in
  Alcotest.(check bool) "1 before 6" true (descriptor_step < write_req);
  Alcotest.(check bool) "6 before 7/8" true (write_req < fetch_own);
  Alcotest.(check bool) "7/8 before 9/10" true (fetch_own < own_grant);
  Alcotest.(check bool) "9/10 before ack" true (own_grant < done_ack)

let test_read_variant_uses_fetch () =
  (* Same flow with a read lock: Fetch instead of Fetch_own, Read_grant
     instead of Own_grant, and B keeps its copy. *)
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let node_a = 4 and node_b = 1 in
  let cb = System.client sys node_b () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cb 4096) in
        ok (Client.write_bytes cb ~addr:r.Region.base (Bytes.of_string "data"));
        r)
  in
  let get_events = record_trace sys in
  let ca = System.client sys node_a () in
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes ca ~addr:region.Region.base 4)));
  let events = get_events () in
  Alcotest.(check bool) "read_req used" true
    (List.exists (fun e -> e.kind = "cm.read_req" && e.src = node_a) events);
  Alcotest.(check bool) "read_grant to A" true
    (List.exists (fun e -> e.kind = "cm.read_grant" && e.dst = node_a) events);
  Alcotest.(check bool) "no ownership transfer" false
    (List.exists (fun e -> e.kind = "cm.own_grant" || e.kind = "cm.fetch_own") events);
  Alcotest.(check bool) "B keeps its copy" true
    (Khazana.Daemon.holds_page (System.daemon sys node_b) region.Region.base)

let test_warm_lock_needs_no_messages () =
  (* Steps 2-3 are optional, and a node that already owns the page skips
     the wire entirely: lock+read resolve from local state. *)
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c 4096) in
        ok (Client.write_bytes c ~addr:r.Region.base (Bytes.of_string "mine"));
        r)
  in
  let get_events = record_trace sys in
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes c ~addr:region.Region.base 4)));
  let cm_events =
    List.filter
      (fun e -> String.length e.kind >= 3 && String.sub e.kind 0 3 = "cm.")
      (get_events ())
  in
  Alcotest.(check (list string)) "no CM traffic for a warm local lock" []
    (List.map (fun e -> e.kind) cm_events)

let () =
  Alcotest.run "figure2"
    [
      ( "lock+fetch",
        [
          Alcotest.test_case "write sequence (fig. 2)" `Quick test_lock_fetch_sequence;
          Alcotest.test_case "read variant" `Quick test_read_variant_uses_fetch;
          Alcotest.test_case "warm lock is silent" `Quick test_warm_lock_needs_no_messages;
        ] );
    ]
