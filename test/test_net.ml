(* Tests for the simulated network: topology, delivery, latency model,
   partitions, crashes, loss and accounting. *)

module Topology = Knet.Topology
module Time = Ksim.Time

module Msg = struct
  type t = { label : string; size : int }

  let size_bytes m = m.size
  let kind m = m.label
  let kinds m = [ m.label ]
end

module Net = Knet.Network.Make (Msg)

let mk ?(seed = 1) ?(nodes_per_cluster = 3) ?(clusters = 2) () =
  let eng = Ksim.Engine.create ~seed () in
  let topo = Topology.symmetric ~nodes_per_cluster ~clusters in
  (eng, topo, Net.create eng topo)

let msg ?(size = 100) label = { Msg.label; size }

(* ----------------------------- Topology ---------------------------- *)

let test_topology_clusters () =
  let topo = Topology.symmetric ~nodes_per_cluster:3 ~clusters:2 in
  Alcotest.(check int) "nodes" 6 (Topology.node_count topo);
  Alcotest.(check int) "clusters" 2 (Topology.cluster_count topo);
  Alcotest.(check int) "n0 cluster" 0 (Topology.cluster_of topo 0);
  Alcotest.(check int) "n5 cluster" 1 (Topology.cluster_of topo 5);
  Alcotest.(check (list int)) "members" [ 3; 4; 5 ] (Topology.cluster_members topo 1);
  Alcotest.(check bool) "same" true (Topology.same_cluster topo 0 2);
  Alcotest.(check bool) "different" false (Topology.same_cluster topo 0 3)

let test_topology_profiles () =
  let topo = Topology.symmetric ~nodes_per_cluster:2 ~clusters:2 in
  let lan = Topology.profile topo 0 1 and wan = Topology.profile topo 0 2 in
  Alcotest.(check bool) "wan slower" true (wan.base_latency > lan.base_latency)

(* ----------------------------- Delivery ---------------------------- *)

let test_basic_delivery () =
  let eng, _, net = mk () in
  let got = ref [] in
  Net.set_handler net 1 (fun ~src m -> got := (src, m.Msg.label) :: !got);
  Net.send net ~src:0 ~dst:1 (msg "hello");
  Ksim.Engine.run eng;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got

let test_lan_vs_wan_latency () =
  let eng, _, net = mk () in
  let lan_t = ref 0 and wan_t = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> lan_t := Ksim.Engine.now eng);
  Net.set_handler net 3 (fun ~src:_ _ -> wan_t := Ksim.Engine.now eng);
  Net.send net ~src:0 ~dst:1 (msg "lan");
  Net.send net ~src:0 ~dst:3 (msg "wan");
  Ksim.Engine.run eng;
  Alcotest.(check bool) "lan under 1ms" true (!lan_t < Time.ms 1);
  Alcotest.(check bool) "wan over 10ms" true (!wan_t > Time.ms 10)

let test_serialisation_delay () =
  let eng, _, net = mk () in
  let small_t = ref 0 and big_t = ref 0 in
  Net.set_handler net 1 (fun ~src:_ m ->
      if m.Msg.label = "small" then small_t := Ksim.Engine.now eng
      else big_t := Ksim.Engine.now eng);
  Net.send net ~src:0 ~dst:1 (msg ~size:100 "small");
  Ksim.Engine.run eng;
  let t1 = !small_t in
  Net.send net ~src:0 ~dst:1 (msg ~size:10_000_000 "big");
  Ksim.Engine.run eng;
  Alcotest.(check bool) "bandwidth charged" true (!big_t - t1 > Time.ms 10)

let test_local_send () =
  let eng, _, net = mk () in
  let got = ref false in
  Net.set_handler net 0 (fun ~src m ->
      Alcotest.(check int) "self src" 0 src;
      Alcotest.(check string) "label" "self" m.Msg.label;
      got := true);
  Net.send net ~src:0 ~dst:0 (msg "self");
  Ksim.Engine.run eng;
  Alcotest.(check bool) "self delivery" true !got;
  Alcotest.(check bool) "cheap" true (Ksim.Engine.now eng < Time.ms 1)

let test_no_handler_drops () =
  let eng, _, net = mk () in
  Net.send net ~src:0 ~dst:1 (msg "void");
  Ksim.Engine.run eng;
  let stats = Net.stats net in
  Alcotest.(check int) "dropped" 1 stats.dropped;
  Alcotest.(check int) "not delivered" 0 stats.delivered

(* ------------------------------ Failures --------------------------- *)

let test_crash_blocks_delivery () =
  let eng, _, net = mk () in
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 (msg "lost");
  Ksim.Engine.run eng;
  Alcotest.(check int) "lost" 0 !got;
  Net.recover net 1;
  Net.send net ~src:0 ~dst:1 (msg "ok");
  Ksim.Engine.run eng;
  Alcotest.(check int) "delivered after recover" 1 !got

let test_crashed_source_cannot_send () =
  let eng, _, net = mk () in
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.crash net 0;
  Net.send net ~src:0 ~dst:1 (msg "ghost");
  Ksim.Engine.run eng;
  Alcotest.(check int) "no ghost sends" 0 !got

let test_inflight_lost_on_crash () =
  let eng, _, net = mk () in
  let got = ref 0 in
  Net.set_handler net 3 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:3 (msg "inflight");
  (* Crash the destination while the message is on the (30ms) wire. *)
  ignore (Ksim.Engine.schedule eng ~after:(Time.ms 1) (fun () -> Net.crash net 3));
  Ksim.Engine.run eng;
  Alcotest.(check int) "in-flight message lost" 0 !got

let test_partition () =
  let eng, _, net = mk () in
  let got = ref 0 in
  Net.set_handler net 3 (fun ~src:_ _ -> incr got);
  Net.partition net [ 0; 1; 2 ] [ 3; 4; 5 ];
  Alcotest.(check bool) "unreachable" false (Net.reachable net 0 3);
  Alcotest.(check bool) "intra still fine" true (Net.reachable net 0 1);
  Net.send net ~src:0 ~dst:3 (msg "blocked");
  Ksim.Engine.run eng;
  Alcotest.(check int) "blocked" 0 !got;
  Net.heal net;
  Net.send net ~src:0 ~dst:3 (msg "after heal");
  Ksim.Engine.run eng;
  Alcotest.(check int) "healed" 1 !got

let test_partition_is_symmetric () =
  let _, _, net = mk () in
  Net.partition net [ 0 ] [ 3 ];
  Alcotest.(check bool) "a->b" false (Net.reachable net 0 3);
  Alcotest.(check bool) "b->a" false (Net.reachable net 3 0);
  Alcotest.(check bool) "others fine" true (Net.reachable net 1 3)

let test_loss () =
  let eng = Ksim.Engine.create ~seed:5 () in
  let topo = Topology.symmetric ~nodes_per_cluster:2 ~clusters:1 in
  Topology.set_lan topo { Topology.lan_default with loss = 0.5 };
  let net = Net.create eng topo in
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 200 do
    Net.send net ~src:0 ~dst:1 (msg "maybe")
  done;
  Ksim.Engine.run eng;
  Alcotest.(check bool) "some lost" true (!got < 200);
  Alcotest.(check bool) "some arrive" true (!got > 0);
  Alcotest.(check bool) "roughly half" true (abs (!got - 100) < 40)

let test_crash_accounts_inflight () =
  (* sent = delivered + dropped + in_flight must survive a crash that
     catches messages on the wire. *)
  let eng, _, net = mk () in
  Net.set_handler net 3 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:3 (msg "doomed-1");
  Net.send net ~src:0 ~dst:3 (msg "doomed-2");
  ignore
    (Ksim.Engine.schedule eng ~after:(Time.ms 1) (fun () ->
         let s = Net.stats net in
         Alcotest.(check int) "on the wire" 2 s.in_flight;
         Alcotest.(check int) "nothing dropped yet" 0 s.dropped;
         Net.crash net 3;
         let s = Net.stats net in
         Alcotest.(check int) "crash folds in-flight into dropped" 2 s.dropped;
         Alcotest.(check int) "nothing left in flight" 0 s.in_flight));
  Ksim.Engine.run eng;
  let s = Net.stats net in
  Alcotest.(check int) "sent" 2 s.sent;
  Alcotest.(check int) "delivered" 0 s.delivered;
  Alcotest.(check int) "conservation" s.sent
    (s.delivered + s.dropped + s.in_flight)

let test_no_stale_delivery_after_recover () =
  (* A message in flight at crash time must not leak into the node after
     it recovers (it was already accounted as dropped). *)
  let eng, _, net = mk () in
  let got = ref 0 in
  Net.set_handler net 3 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:3 (msg "stale");
  ignore (Ksim.Engine.schedule eng ~after:(Time.ms 1) (fun () -> Net.crash net 3));
  ignore (Ksim.Engine.schedule eng ~after:(Time.ms 2) (fun () -> Net.recover net 3));
  Ksim.Engine.run eng;
  Alcotest.(check int) "pre-crash message never delivered" 0 !got;
  let s = Net.stats net in
  Alcotest.(check int) "counted once, as dropped" 1 s.dropped;
  Alcotest.(check int) "conservation" s.sent
    (s.delivered + s.dropped + s.in_flight)

(* ----------------------------- Accounting -------------------------- *)

let test_stats_and_kinds () =
  let eng, _, net = mk () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 (msg ~size:10 "a");
  Net.send net ~src:0 ~dst:1 (msg ~size:20 "a");
  Net.send net ~src:0 ~dst:1 (msg ~size:30 "b");
  Ksim.Engine.run eng;
  let stats = Net.stats net in
  Alcotest.(check int) "sent" 3 stats.sent;
  Alcotest.(check int) "delivered" 3 stats.delivered;
  Alcotest.(check int) "bytes" 60 stats.bytes_sent;
  Alcotest.(check (list (pair string int))) "kinds" [ ("a", 2); ("b", 1) ]
    stats.by_kind;
  Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Net.stats net).sent

let test_reset_stats_with_traffic_in_flight () =
  (* Resetting the window while messages are on the wire must not break
     conservation: in-flight messages stay counted as sent in the new
     window, so when they land they balance as delivered (or dropped),
     never as delivered-without-sent. *)
  let eng, _, net = mk () in
  Net.set_handler net 3 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:3 (msg "landed");
  Ksim.Engine.run eng;
  Net.send net ~src:0 ~dst:3 (msg "mid-air");
  Net.send net ~src:0 ~dst:3 (msg "mid-air");
  let before = Net.stats net in
  Alcotest.(check int) "two in flight at reset" 2 before.in_flight;
  Net.reset_stats net;
  let s0 = Net.stats net in
  Alcotest.(check int) "window cleared of landed traffic" 0 s0.delivered;
  Alcotest.(check int) "conservation at reset" s0.sent
    (s0.delivered + s0.dropped + s0.in_flight);
  Ksim.Engine.run eng;
  let s1 = Net.stats net in
  Alcotest.(check int) "in-flight landed in the new window" 2 s1.delivered;
  Alcotest.(check int) "conservation after landing" s1.sent
    (s1.delivered + s1.dropped + s1.in_flight)

let test_trace () =
  let eng, _, net = mk () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  let traced = ref [] in
  Net.set_trace net (fun _t ~src ~dst m -> traced := (src, dst, m.Msg.label) :: !traced);
  Net.send net ~src:0 ~dst:1 (msg "x");
  Net.clear_trace net;
  Net.send net ~src:0 ~dst:1 (msg "y");
  Ksim.Engine.run eng;
  Alcotest.(check (list (triple int int string))) "only traced while set"
    [ (0, 1, "x") ] !traced

let test_deterministic_delivery_times () =
  let run () =
    let eng, _, net = mk ~seed:33 () in
    let times = ref [] in
    Net.set_handler net 3 (fun ~src:_ _ -> times := Ksim.Engine.now eng :: !times);
    for _ = 1 to 10 do
      Net.send net ~src:0 ~dst:3 (msg "t")
    done;
    Ksim.Engine.run eng;
    !times
  in
  Alcotest.(check (list int)) "same seed same jitter" (run ()) (run ())

let () =
  Alcotest.run "knet"
    [
      ( "topology",
        [
          Alcotest.test_case "clusters" `Quick test_topology_clusters;
          Alcotest.test_case "profiles" `Quick test_topology_profiles;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "lan vs wan" `Quick test_lan_vs_wan_latency;
          Alcotest.test_case "bandwidth" `Quick test_serialisation_delay;
          Alcotest.test_case "local send" `Quick test_local_send;
          Alcotest.test_case "no handler" `Quick test_no_handler_drops;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash" `Quick test_crash_blocks_delivery;
          Alcotest.test_case "crashed source" `Quick test_crashed_source_cannot_send;
          Alcotest.test_case "in-flight loss" `Quick test_inflight_lost_on_crash;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "partition symmetric" `Quick test_partition_is_symmetric;
          Alcotest.test_case "loss model" `Quick test_loss;
          Alcotest.test_case "crash accounting" `Quick test_crash_accounts_inflight;
          Alcotest.test_case "no stale delivery" `Quick
            test_no_stale_delivery_after_recover;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "stats and kinds" `Quick test_stats_and_kinds;
          Alcotest.test_case "reset with traffic in flight" `Quick
            test_reset_stats_with_traffic_in_flight;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "deterministic" `Quick test_deterministic_delivery_times;
        ] );
    ]
