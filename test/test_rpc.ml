(* Tests for the request/response layer: correlation, timeout, retry,
   one-way messages. *)

module Time = Ksim.Time
module Topology = Knet.Topology

module Proto = struct
  type request = Echo of string | Slow of Time.t | Silent
  type response = Echoed of string

  let request_size = function
    | Echo s -> 16 + String.length s
    | Slow _ -> 24
    | Silent -> 8

  let response_size (Echoed s) = 16 + String.length s
  let request_kind = function Echo _ -> "echo" | Slow _ -> "slow" | Silent -> "silent"
end

module R = Krpc.Rpc.Make (Proto)

let mk ?(seed = 1) () =
  let eng = Ksim.Engine.create ~seed () in
  let topo = Topology.symmetric ~nodes_per_cluster:3 ~clusters:2 in
  let rpc = R.create eng topo in
  (eng, rpc)

let echo_server rpc node =
  R.set_server rpc node (fun ~src:_ ~span:_ req ~reply ->
      match req with
      | Proto.Echo s -> reply (Proto.Echoed s)
      | Proto.Slow d ->
        Ksim.Fiber.spawn (R.engine rpc) (fun () ->
            Ksim.Fiber.sleep d;
            reply (Proto.Echoed "slow"))
      | Proto.Silent -> ())

let in_fiber eng f =
  let result = ref None in
  Ksim.Fiber.spawn eng (fun () -> result := Some (f ()));
  Ksim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "fiber did not finish"

let test_call_response () =
  let eng, rpc = mk () in
  echo_server rpc 1;
  let result = in_fiber eng (fun () -> R.call rpc ~src:0 ~dst:1 (Proto.Echo "hi")) in
  match result with
  | Ok (Proto.Echoed s) -> Alcotest.(check string) "echo" "hi" s
  | Error `Timeout -> Alcotest.fail "unexpected timeout"

let test_concurrent_calls_correlate () =
  let eng, rpc = mk () in
  echo_server rpc 1;
  echo_server rpc 3;
  let results = ref [] in
  for i = 0 to 4 do
    Ksim.Fiber.spawn eng (fun () ->
        let dst = if i mod 2 = 0 then 1 else 3 in
        match R.call rpc ~src:0 ~dst (Proto.Echo (string_of_int i)) with
        | Ok (Proto.Echoed s) -> results := (i, s) :: !results
        | Error `Timeout -> ())
  done;
  Ksim.Engine.run eng;
  let sorted = List.sort compare !results in
  Alcotest.(check (list (pair int string)))
    "each call got its own answer"
    [ (0, "0"); (1, "1"); (2, "2"); (3, "3"); (4, "4") ]
    sorted

let test_timeout () =
  let eng, rpc = mk () in
  echo_server rpc 1;
  let result =
    in_fiber eng (fun () ->
        R.call rpc ~src:0 ~dst:1
          ~policy:(Krpc.Policy.with_timeout (Time.ms 50))
          (Proto.Slow (Time.ms 500)))
  in
  Alcotest.(check bool) "timed out" true (result = Error `Timeout);
  (* The late reply must not confuse later calls. *)
  let r2 = in_fiber eng (fun () -> R.call rpc ~src:0 ~dst:1 (Proto.Echo "after")) in
  match r2 with
  | Ok (Proto.Echoed s) -> Alcotest.(check string) "later call fine" "after" s
  | Error `Timeout -> Alcotest.fail "later call timed out"

let test_no_response_times_out () =
  let eng, rpc = mk () in
  echo_server rpc 1;
  let t0 = Ksim.Engine.now eng in
  let result =
    in_fiber eng (fun () -> R.call rpc ~src:0 ~dst:1 ~policy:(Krpc.Policy.with_timeout (Time.ms 100)) Proto.Silent)
  in
  Alcotest.(check bool) "timeout" true (result = Error `Timeout);
  Alcotest.(check bool) "waited" true (Ksim.Engine.now eng - t0 >= Time.ms 100)

let test_retry_succeeds_after_partition_heals () =
  let eng, rpc = mk () in
  echo_server rpc 3;
  let net = R.net rpc in
  R.Net.partition net [ 0 ] [ 3 ];
  (* Heal while the second attempt is pending. *)
  ignore (Ksim.Engine.schedule eng ~after:(Time.ms 150) (fun () -> R.Net.heal net));
  let result =
    in_fiber eng (fun () ->
        R.call rpc ~src:0 ~dst:3
          ~policy:(Krpc.Policy.with_timeout ~attempts:5 (Time.ms 100))
          (Proto.Echo "retry"))
  in
  match result with
  | Ok (Proto.Echoed s) -> Alcotest.(check string) "retried ok" "retry" s
  | Error `Timeout -> Alcotest.fail "should succeed after heal"

let test_retries_exhausted () =
  let eng, rpc = mk () in
  let net = R.net rpc in
  R.Net.crash net 1;
  let result =
    in_fiber eng (fun () ->
        R.call rpc ~src:0 ~dst:1
          ~policy:(Krpc.Policy.with_timeout ~attempts:3 (Time.ms 20))
          (Proto.Echo "x"))
  in
  Alcotest.(check bool) "exhausted" true (result = Error `Timeout);
  Alcotest.(check int) "no leaked pending calls" 0 (R.pending_calls rpc)

let test_notify () =
  let eng, rpc = mk () in
  let got = ref [] in
  R.set_server rpc 1 (fun ~src ~span:_ req ~reply:_ ->
      match req with
      | Proto.Echo s -> got := (src, s) :: !got
      | Proto.Slow _ | Proto.Silent -> ());
  R.notify rpc ~src:2 ~dst:1 (Proto.Echo "oneway");
  Ksim.Engine.run eng;
  Alcotest.(check (list (pair int string))) "oneway delivered" [ (2, "oneway") ] !got

(* --------------------------- Coalescing ---------------------------- *)

let oneway_server rpc node got =
  R.set_server rpc node (fun ~src:_ ~span:_ req ~reply:_ ->
      match req with
      | Proto.Echo s -> got := s :: !got
      | Proto.Slow _ | Proto.Silent -> ())

let test_coalesce_batches_same_tick () =
  let eng, rpc = mk () in
  let got = ref [] in
  oneway_server rpc 1 got;
  let s0 = R.Net.stats (R.net rpc) in
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "a");
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "b");
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "c");
  Ksim.Engine.run eng;
  let s1 = R.Net.stats (R.net rpc) in
  Alcotest.(check (list string)) "all delivered, send order" [ "a"; "b"; "c" ]
    (List.rev !got);
  Alcotest.(check int) "one envelope" 1 (s1.R.Net.sent - s0.R.Net.sent);
  Alcotest.(check int) "three logical messages" 3 (s1.R.Net.atoms - s0.R.Net.atoms)

let test_coalesce_per_destination () =
  let eng, rpc = mk () in
  let got1 = ref [] and got3 = ref [] in
  oneway_server rpc 1 got1;
  oneway_server rpc 3 got3;
  let s0 = R.Net.stats (R.net rpc) in
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "x");
  R.notify rpc ~src:0 ~dst:3 ~coalesce:true (Proto.Echo "y");
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "z");
  Ksim.Engine.run eng;
  let s1 = R.Net.stats (R.net rpc) in
  Alcotest.(check (list string)) "dst 1 got both" [ "x"; "z" ] (List.rev !got1);
  Alcotest.(check (list string)) "dst 3 got its one" [ "y" ] !got3;
  (* One batch to node 1, one plain oneway to node 3. *)
  Alcotest.(check int) "two envelopes" 2 (s1.R.Net.sent - s0.R.Net.sent)

let test_coalesce_singleton_is_plain_oneway () =
  let eng, rpc = mk () in
  let got = ref [] in
  oneway_server rpc 1 got;
  let s0 = R.Net.stats (R.net rpc) in
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "solo");
  Ksim.Engine.run eng;
  let coalesced_bytes =
    (R.Net.stats (R.net rpc)).R.Net.bytes_sent - s0.R.Net.bytes_sent
  in
  let s1 = R.Net.stats (R.net rpc) in
  R.notify rpc ~src:0 ~dst:1 (Proto.Echo "solo");
  Ksim.Engine.run eng;
  let plain_bytes =
    (R.Net.stats (R.net rpc)).R.Net.bytes_sent - s1.R.Net.bytes_sent
  in
  Alcotest.(check (list string)) "both delivered" [ "solo"; "solo" ] !got;
  Alcotest.(check int) "a batch of one costs exactly a oneway" plain_bytes
    coalesced_bytes

let test_coalescing_disabled () =
  let eng, rpc = mk () in
  let got = ref [] in
  oneway_server rpc 1 got;
  R.set_coalescing rpc false;
  let s0 = R.Net.stats (R.net rpc) in
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "a");
  R.notify rpc ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "b");
  Ksim.Engine.run eng;
  let s1 = R.Net.stats (R.net rpc) in
  (* Separate envelopes may reorder under link jitter. *)
  Alcotest.(check (list string)) "delivered" [ "a"; "b" ]
    (List.sort compare !got);
  Alcotest.(check int) "one envelope per message" 2 (s1.R.Net.sent - s0.R.Net.sent)

let test_batch_envelope_cheaper_than_oneways () =
  let batch =
    R.Msg.Batch { items = [ (0, Proto.Echo "aa"); (0, Proto.Echo "bb") ] }
  in
  let oneways =
    R.Msg.size_bytes (R.Msg.Oneway { span = 0; body = Proto.Echo "aa" })
    + R.Msg.size_bytes (R.Msg.Oneway { span = 0; body = Proto.Echo "bb" })
  in
  Alcotest.(check bool) "batch saves header bytes" true
    (R.Msg.size_bytes batch < oneways);
  Alcotest.(check (list string)) "batch kinds are per item" [ "echo"; "echo" ]
    (R.Msg.kinds batch)

let test_server_replacement () =
  let eng, rpc = mk () in
  R.set_server rpc 1 (fun ~src:_ ~span:_ _ ~reply -> reply (Proto.Echoed "v1"));
  R.set_server rpc 1 (fun ~src:_ ~span:_ _ ~reply -> reply (Proto.Echoed "v2"));
  let result = in_fiber eng (fun () -> R.call rpc ~src:0 ~dst:1 (Proto.Echo "?")) in
  match result with
  | Ok (Proto.Echoed s) -> Alcotest.(check string) "latest handler" "v2" s
  | Error `Timeout -> Alcotest.fail "timeout"

let () =
  Alcotest.run "krpc"
    [
      ( "rpc",
        [
          Alcotest.test_case "call/response" `Quick test_call_response;
          Alcotest.test_case "correlation" `Quick test_concurrent_calls_correlate;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "silent server" `Quick test_no_response_times_out;
          Alcotest.test_case "retry across partition" `Quick
            test_retry_succeeds_after_partition_heals;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "notify" `Quick test_notify;
          Alcotest.test_case "server replacement" `Quick test_server_replacement;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "same-tick batch" `Quick test_coalesce_batches_same_tick;
          Alcotest.test_case "per destination" `Quick test_coalesce_per_destination;
          Alcotest.test_case "singleton stays plain" `Quick
            test_coalesce_singleton_is_plain_oneway;
          Alcotest.test_case "disable flag" `Quick test_coalescing_disabled;
          Alcotest.test_case "envelope economics" `Quick
            test_batch_envelope_cheaper_than_oneways;
        ] );
    ]
