(* Tests for the two-tier local page store. *)

module Store = Kstorage.Page_store
module Gaddr = Kutil.Gaddr
module Time = Ksim.Time

let page n = Gaddr.of_int (n * 4096)
let data s = Bytes.of_string s

let in_fiber eng f =
  let result = ref None in
  Ksim.Fiber.spawn eng (fun () -> result := Some (f ()));
  Ksim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "fiber did not finish"

let mk ?(ram = 4) ?(disk = 16) () =
  let eng = Ksim.Engine.create () in
  (eng, Store.create eng (Store.config ~ram_pages:ram ~disk_pages:disk ()))

let test_write_read () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "hello") ~dirty:false;
      match Store.read s (page 1) with
      | Some b -> Alcotest.(check string) "content" "hello" (Bytes.to_string b)
      | None -> Alcotest.fail "missing");
  Alcotest.(check int) "one ram page" 1 (Store.ram_used s)

let test_read_returns_copy () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "abc") ~dirty:false;
      (match Store.read s (page 1) with
       | Some b -> Bytes.set b 0 'X'
       | None -> Alcotest.fail "missing");
      match Store.read s (page 1) with
      | Some b -> Alcotest.(check string) "unchanged" "abc" (Bytes.to_string b)
      | None -> Alcotest.fail "missing")

let test_miss () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Alcotest.(check (option unit)) "miss" None
        (Option.map ignore (Store.read s (page 9))));
  Alcotest.(check int) "counted" 1 (Store.stats s).misses

let test_ram_latency_vs_disk () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "a") ~dirty:false;
      (* Push page 1 to disk by filling RAM. *)
      Store.write s (page 2) (data "b") ~dirty:false;
      let t0 = Ksim.Engine.now eng in
      ignore (Store.read s (page 2));
      let ram_cost = Ksim.Engine.now eng - t0 in
      let t1 = Ksim.Engine.now eng in
      ignore (Store.read s (page 1));
      let disk_cost = Ksim.Engine.now eng - t1 in
      Alcotest.(check bool) "disk much slower" true (disk_cost > 100 * ram_cost))

let test_eviction_to_disk () =
  let eng, s = mk ~ram:2 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "one") ~dirty:false;
      Store.write s (page 2) (data "two") ~dirty:false;
      Store.write s (page 3) (data "three") ~dirty:false;
      Alcotest.(check int) "ram capped" 2 (Store.ram_used s);
      Alcotest.(check int) "victim on disk" 1 (Store.disk_used s);
      Alcotest.(check bool) "lru victim" true (Store.where s (page 1) = Some Store.Disk);
      (* Disk hit promotes back into RAM. *)
      match Store.read s (page 1) with
      | Some b ->
        Alcotest.(check string) "survived" "one" (Bytes.to_string b);
        Alcotest.(check bool) "promoted" true (Store.where s (page 1) = Some Store.Ram)
      | None -> Alcotest.fail "lost");
  let st = Store.stats s in
  Alcotest.(check bool) "evictions counted" true (st.ram_evictions >= 1);
  Alcotest.(check int) "disk hit" 1 st.disk_hits

let test_pinned_not_victimised () =
  let eng, s = mk ~ram:2 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "pinned") ~dirty:false;
      Store.pin s (page 1);
      Store.write s (page 2) (data "b") ~dirty:false;
      Store.write s (page 3) (data "c") ~dirty:false;
      Store.write s (page 4) (data "d") ~dirty:false;
      Alcotest.(check bool) "pinned stays in ram" true
        (Store.where s (page 1) = Some Store.Ram);
      Store.unpin s (page 1);
      Store.write s (page 5) (data "e") ~dirty:false;
      Store.write s (page 6) (data "f") ~dirty:false;
      Alcotest.(check bool) "unpinned can move" true
        (Store.where s (page 1) <> Some Store.Ram))

let test_evict_hook_on_disk_overflow () =
  let eng, s = mk ~ram:1 ~disk:2 () in
  let evicted = ref [] in
  Store.set_evict_hook s (fun addr _bytes ~dirty -> evicted := (addr, dirty) :: !evicted);
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "1") ~dirty:true;
      Store.write s (page 2) (data "2") ~dirty:false;
      Store.write s (page 3) (data "3") ~dirty:false;
      Store.write s (page 4) (data "4") ~dirty:false);
  (* ram=1, disk=2: the fourth write must push one page off the disk. *)
  Alcotest.(check bool) "hook called" true (List.length !evicted >= 1);
  let st = Store.stats s in
  Alcotest.(check bool) "writeback counted for dirty" true
    (st.writebacks >= if List.exists snd !evicted then 1 else 0)

let test_dirty_tracking () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "x") ~dirty:true;
      Alcotest.(check bool) "dirty" true (Store.is_dirty s (page 1));
      Store.mark_clean s (page 1);
      Alcotest.(check bool) "clean" false (Store.is_dirty s (page 1));
      (* Dirty bit is sticky across clean writes. *)
      Store.write s (page 1) (data "y") ~dirty:true;
      Store.write s (page 1) (data "z") ~dirty:false;
      Alcotest.(check bool) "sticky" true (Store.is_dirty s (page 1)))

let test_immediate_ops () =
  let _eng, s = mk () in
  (* No fiber needed: immediate ops never sleep. *)
  Store.write_immediate s (page 1) (data "imm") ~dirty:false;
  (match Store.read_immediate s (page 1) with
   | Some b -> Alcotest.(check string) "content" "imm" (Bytes.to_string b)
   | None -> Alcotest.fail "missing");
  Alcotest.(check (option unit)) "absent" None
    (Option.map ignore (Store.read_immediate s (page 2)))

let test_drop () =
  let eng, s = mk () in
  in_fiber eng (fun () -> Store.write s (page 1) (data "x") ~dirty:true);
  Store.drop s (page 1);
  Alcotest.(check (option unit)) "gone" None
    (Option.map ignore (Store.read_immediate s (page 1)))

let test_crash_loses_ram_keeps_disk () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "old") ~dirty:false;
      Store.write s (page 2) (data "new") ~dirty:false);
  (* page 1 is on disk, page 2 in RAM. *)
  Store.crash s;
  Alcotest.(check bool) "ram gone" true (Store.where s (page 2) = None);
  Alcotest.(check bool) "disk survives" true (Store.where s (page 1) = Some Store.Disk)

let test_pages_listing () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "a") ~dirty:false;
      Store.write s (page 2) (data "b") ~dirty:false);
  let pages = List.sort Gaddr.compare (Store.pages s) in
  Alcotest.(check int) "two pages" 2 (List.length pages);
  Alcotest.(check bool) "page1 listed" true
    (List.exists (Gaddr.equal (page 1)) pages)

(* ------------------------- disk fault model ------------------------ *)

let all_faults =
  {
    Kstorage.Disk_fault.lost_write_prob = 1.0;
    torn_write_prob = 0.0;
    crash_during_io_prob = 0.0;
  }

let torn_faults = { all_faults with Kstorage.Disk_fault.torn_write_prob = 1.0 }

let test_lost_unsynced_write_rolls_back () =
  let _eng, s = mk () in
  Store.set_faults s all_faults;
  Store.write_immediate s (page 1) (data "v1") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.sync s;
  Store.write_immediate s (page 1) (data "v2") ~dirty:true;
  Store.flush_immediate s (page 1);
  (* The v2 flush missed the sync barrier: crash rolls it back to v1. *)
  Store.crash s;
  (match Store.read_immediate s (page 1) with
   | Some b -> Alcotest.(check string) "rolled back" "v1" (Bytes.to_string b)
   | None -> Alcotest.fail "durable copy lost");
  Alcotest.(check bool) "loss counted" true ((Store.stats s).lost_writes >= 1)

let test_never_synced_write_vanishes () =
  let _eng, s = mk () in
  Store.set_faults s all_faults;
  Store.write_immediate s (page 1) (data "only") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.crash s;
  Alcotest.(check (option unit)) "no prior durable content" None
    (Option.map ignore (Store.read_immediate s (page 1)))

let test_sync_barrier_protects () =
  let _eng, s = mk () in
  Store.set_faults s all_faults;
  Store.write_immediate s (page 1) (data "safe") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.sync s;
  Store.crash s;
  (match Store.read_immediate s (page 1) with
   | Some b -> Alcotest.(check string) "survived" "safe" (Bytes.to_string b)
   | None -> Alcotest.fail "synced write lost")

let test_torn_write_never_served () =
  let _eng, s = mk () in
  Store.set_faults s torn_faults;
  Store.write_immediate s (page 1) (data "TORNTORN") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.crash s;
  Alcotest.(check bool) "tear recorded" true ((Store.stats s).torn_writes >= 1);
  (* The torn image is on disk but must read as a miss, never as data. *)
  Alcotest.(check (option unit)) "torn not served" None
    (Option.map ignore (Store.read_immediate s (page 1)));
  Alcotest.(check bool) "detection counted" true
    ((Store.stats s).torn_detected >= 1)

let test_scrub_drops_torn () =
  let _eng, s = mk () in
  Store.set_faults s torn_faults;
  Store.write_immediate s (page 1) (data "TORNTORN") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.write_immediate s (page 2) (data "fine") ~dirty:true;
  Store.flush_immediate s (page 2);
  Store.sync s;
  Store.write_immediate s (page 1) (data "overwrit") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.crash s;
  let dropped = Store.scrub s in
  Alcotest.(check int) "one torn frame dropped" 1 dropped;
  (match Store.read_immediate s (page 2) with
   | Some b -> Alcotest.(check string) "clean page intact" "fine" (Bytes.to_string b)
   | None -> Alcotest.fail "clean synced page lost")

let test_crash_clears_pins () =
  let eng, s = mk ~ram:1 ~disk:2 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "a") ~dirty:false;
      Store.write s (page 2) (data "b") ~dirty:false);
  (* page 1 demoted to disk; pin it there, then crash: the pinning fiber
     is dead, so the pin must die too or the page is stuck forever. *)
  Store.pin s (page 1);
  Store.crash s;
  in_fiber eng (fun () ->
      Store.write s (page 3) (data "c") ~dirty:false;
      Store.write s (page 4) (data "d") ~dirty:false;
      Store.write s (page 5) (data "e") ~dirty:false);
  Alcotest.(check bool) "page 1 was evictable after crash" true
    (Store.where s (page 1) = None);
  (* Symmetry: pin and unpin of a non-resident page are both no-ops. *)
  Store.pin s (page 99);
  Store.unpin s (page 99)

(* Regression: promoting a disk hit into RAM must keep the disk frame
   (inclusive caching). After a WAL checkpoint truncates a page's log
   records, that frame can be the only durable copy of a committed image;
   an exclusive promotion would turn it RAM-only and a crash would lose an
   acked write with nothing left to replay. *)
let test_promotion_keeps_durable_copy () =
  let eng, s = mk () in
  Store.set_faults s all_faults;
  Store.write_immediate s (page 1) (data "keep") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.sync s;
  (* RAM dies with the crash; only the synced disk frame remains. *)
  Store.crash s;
  in_fiber eng (fun () ->
      match Store.read s (page 1) with
      | Some b ->
        Alcotest.(check string) "disk hit" "keep" (Bytes.to_string b);
        Alcotest.(check bool) "promoted" true
          (Store.where s (page 1) = Some Store.Ram)
      | None -> Alcotest.fail "durable page unreadable");
  Store.crash s;
  match Store.read_immediate s (page 1) with
  | Some b ->
    Alcotest.(check string) "durable copy survived the promotion" "keep"
      (Bytes.to_string b)
  | None -> Alcotest.fail "promotion dropped the only durable copy"

(* Regression: overwriting a disk-resident page in RAM must keep the prior
   durable image on disk until the new content is flushed — a crash before
   the flush reverts to the old committed bytes instead of losing the page
   outright. *)
let test_overwrite_keeps_prior_durable () =
  let _eng, s = mk () in
  Store.set_faults s all_faults;
  Store.write_immediate s (page 1) (data "v1") ~dirty:true;
  Store.flush_immediate s (page 1);
  Store.sync s;
  Store.crash s;
  (* Page now lives only on disk; overwrite it without flushing. *)
  Store.write_immediate s (page 1) (data "v2") ~dirty:true;
  (match Store.read_immediate s (page 1) with
   | Some b -> Alcotest.(check string) "RAM fronts disk" "v2" (Bytes.to_string b)
   | None -> Alcotest.fail "overwritten page unreadable");
  Store.crash s;
  match Store.read_immediate s (page 1) with
  | Some b ->
    Alcotest.(check string) "prior durable image survived" "v1"
      (Bytes.to_string b)
  | None -> Alcotest.fail "overwrite destroyed the durable copy"

let test_flush_immediate_single_writeback () =
  let eng, s = mk ~ram:1 ~disk:1 () in
  let dirty_evictions = ref 0 in
  Store.set_evict_hook s (fun _ _ ~dirty -> if dirty then incr dirty_evictions);
  Store.write_immediate s (page 1) (data "x") ~dirty:true;
  Store.flush_immediate s (page 1);
  Alcotest.(check int) "flush counted once" 1 (Store.stats s).writebacks;
  Alcotest.(check bool) "ram copy now clean" false (Store.is_dirty s (page 1));
  (* Demote the (now clean) RAM frame and push it off the disk: the bytes
     were already flushed, so no second writeback may happen. *)
  in_fiber eng (fun () ->
      Store.write s (page 2) (data "y") ~dirty:false;
      Store.write s (page 3) (data "z") ~dirty:false);
  Alcotest.(check int) "no double writeback" 1 (Store.stats s).writebacks;
  Alcotest.(check int) "hook saw no dirty page 1" 0 !dirty_evictions

(* ----------------------------- WAL --------------------------------- *)

module Wal = Kstorage.Wal

let mk_wal ?config ?(faults = Kstorage.Disk_fault.none) ?(seed = 7) () =
  let w = Wal.create ?config ~rng:(Kutil.Rng.create ~seed) () in
  Wal.set_faults w faults;
  w

let payload_strings r =
  List.map
    (function
      | Wal.Page (a, b) ->
        Printf.sprintf "page:%d:%s" (Gaddr.diff a Gaddr.zero) (Bytes.to_string b)
      | Wal.Note (tag, b) -> Printf.sprintf "note:%s:%s" tag (Bytes.to_string b))
    r.Wal.ops

let test_wal_commit_replay () =
  let w = mk_wal () in
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "one");
  Wal.log_note w tx "meta" (data "m");
  Wal.commit w tx;
  Wal.control w "ctl" (data "c");
  (* An intent without a commit must never surface. *)
  let dead = Wal.begin_tx w in
  Wal.log_page w dead (page 2) (data "ghost");
  let r = Wal.replay w in
  Alcotest.(check (list string)) "committed ops in order"
    [ "page:4096:one"; "note:meta:m"; "note:ctl:c" ]
    (payload_strings r);
  Alcotest.(check bool) "uncommitted discarded" true (r.Wal.discarded >= 1)

let test_wal_replay_idempotent () =
  let w = mk_wal () in
  for i = 1 to 5 do
    let tx = Wal.begin_tx w in
    Wal.log_page w tx (page i) (data (string_of_int i));
    Wal.commit w tx
  done;
  let r1 = Wal.replay w in
  let r2 = Wal.replay w in
  Alcotest.(check (list string)) "replay twice = once" (payload_strings r1)
    (payload_strings r2);
  (* Applying the op list is idempotent: payloads are plain sets. *)
  let apply ops =
    let t = Gaddr.Table.create 8 in
    List.iter
      (function
        | Wal.Page (a, b) -> Gaddr.Table.replace t a (Bytes.to_string b)
        | Wal.Note _ -> ())
      ops;
    List.sort compare (Gaddr.Table.fold (fun _ v acc -> v :: acc) t [])
  in
  Alcotest.(check (list string)) "apply twice = once" (apply r1.Wal.ops)
    (apply (r1.Wal.ops @ r1.Wal.ops))

let test_wal_checkpoint_truncates () =
  let w =
    mk_wal ~config:{ Wal.default_config with Wal.checkpoint_every = 10 } ()
  in
  for i = 1 to 4 do
    let tx = Wal.begin_tx w in
    Wal.log_page w tx (page i) (data "d");
    Wal.commit w tx
  done;
  Alcotest.(check bool) "needs checkpoint" true (Wal.needs_checkpoint w);
  Wal.checkpoint w (data "SNAP");
  Alcotest.(check int) "truncated to one record" 1 (Wal.size w);
  Alcotest.(check bool) "no longer needs one" false (Wal.needs_checkpoint w);
  let r = Wal.replay w in
  Alcotest.(check (option string)) "snapshot survives" (Some "SNAP")
    (Option.map Bytes.to_string r.Wal.snapshot);
  Alcotest.(check (list string)) "old ops truncated away" [] (payload_strings r)

let test_wal_crash_loses_unsynced_tail () =
  let w = mk_wal ~faults:all_faults () in
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "kept");
  Wal.commit w tx;
  (* commit synced; these hint-grade records did not. *)
  Wal.control w ~sync:false "hint" (data "a");
  Wal.control w ~sync:false "hint" (data "b");
  Wal.crash w;
  let r = Wal.replay w in
  Alcotest.(check (list string)) "synced prefix only" [ "page:4096:kept" ]
    (payload_strings r);
  Alcotest.(check bool) "losses counted" true ((Wal.stats w).lost_records >= 1)

let test_wal_torn_frontier_record () =
  let w = mk_wal ~faults:torn_faults () in
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "durable");
  Wal.commit w tx;
  Wal.control w ~sync:false "tail" (data "unsynced-payload");
  Wal.crash w;
  Alcotest.(check bool) "torn tail recorded" true ((Wal.stats w).torn_tail >= 1);
  let r = Wal.replay w in
  (* The torn record ends the readable log; the committed prefix is whole. *)
  Alcotest.(check (list string)) "prefix intact, torn dropped"
    [ "page:4096:durable" ] (payload_strings r);
  Alcotest.(check bool) "torn discarded" true (r.Wal.discarded >= 1)

(* Regression: a torn frontier record ends the readable log, so it must
   not be allowed to linger once recovery has replayed around it — records
   appended after it would be unreachable at the next replay. The owner's
   recovery checkpoint truncates it away; commits made after that must
   survive a second crash. *)
let test_wal_checkpoint_clears_torn_frontier () =
  let w = mk_wal ~faults:torn_faults () in
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "old-data");
  Wal.commit w tx;
  Wal.control w ~sync:false "tail" (data "doomed");
  Wal.crash w;
  Alcotest.(check bool) "torn frontier left behind" true
    ((Wal.stats w).torn_tail >= 1);
  (* Recovery: replay, then checkpoint what was recovered (simulating the
     daemon snapshotting its restored state). *)
  ignore (Wal.replay w);
  Wal.checkpoint w (data "SNAP");
  Alcotest.(check int) "log truncated to the checkpoint" 1 (Wal.size w);
  (* A transaction committed after recovery... *)
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 2) (data "new-data");
  Wal.commit w tx;
  (* ...must be readable after a second crash: nothing torn may remain
     ahead of it in the log. *)
  Wal.crash w;
  let r = Wal.replay w in
  Alcotest.(check (option string)) "snapshot intact" (Some "SNAP")
    (Option.map Bytes.to_string r.Wal.snapshot);
  Alcotest.(check (list string)) "post-recovery commit replayed"
    [ "page:8192:new-data" ] (payload_strings r)

(* Regression: crash truncation must recount records-since-checkpoint from
   what actually survived, not clamp the old counter to the log length
   (which counts the checkpoint record itself and over-reports after a
   lossy crash, skewing checkpoint cadence). *)
let test_wal_crash_recounts_since_checkpoint () =
  let w = mk_wal ~faults:all_faults () in
  Wal.checkpoint w (data "S");
  Wal.control w "kept" (data "1");
  Wal.control w ~sync:false "lost" (data "2");
  Wal.control w ~sync:false "lost" (data "3");
  Wal.crash w;
  (* The whole unsynced tail is dropped: one synced record survives after
     the checkpoint. *)
  Alcotest.(check int) "survivors after checkpoint" 1
    (Wal.records_since_checkpoint w)

(* Crash-at-every-point sweep: build the same operation script, crash it
   after every prefix length with a mid-flight uncommitted intent, and
   check the recovery contract both ways — every committed write is in the
   replay, no uncommitted write ever is. The fault model drops every
   unsynced record, which makes "crash anywhere between two syncs"
   equivalent to crashing right after the earlier one — the worst case. *)
let test_wal_crash_every_point_sweep () =
  let script = [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ] in
  let n = List.length script in
  for cut = 0 to n do
    let w = mk_wal ~faults:all_faults ~seed:(100 + cut) () in
    let committed = ref [] in
    List.iteri
      (fun i content ->
        if i < cut then begin
          let tx = Wal.begin_tx w in
          Wal.log_page w tx (page (i + 1)) (data content);
          Wal.commit w tx;
          committed := Printf.sprintf "page:%d:%s" ((i + 1) * 4096) content
                       :: !committed
        end)
      script;
    (* A crash catches the next intent mid-flight: begun, logged, never
       committed. *)
    if cut < n then begin
      let tx = Wal.begin_tx w in
      Wal.log_page w tx (page (cut + 1)) (data "UNCOMMITTED")
    end;
    Wal.crash w;
    let r = Wal.replay w in
    Alcotest.(check (list string))
      (Printf.sprintf "crash point %d: exactly the committed prefix" cut)
      (List.rev !committed) (payload_strings r);
    (* Committing the dead intent after the crash must be a no-op. *)
    Alcotest.(check (list string))
      (Printf.sprintf "crash point %d: stable after replay" cut)
      (List.rev !committed)
      (payload_strings (Wal.replay w))
  done

(* ------------------------------------------------------------------ *)
(* File-backed WAL: the durability a real killed process comes back to *)
(* ------------------------------------------------------------------ *)

let with_wal_file f () =
  let path =
    Filename.temp_file
      (Printf.sprintf "kwal-test-%d" (Unix.getpid ()))
      ".wal"
  in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f path)

(* A second Wal attached to the same path is "the restarted process". *)
let reload path =
  let w = mk_wal ~seed:8 () in
  Wal.attach_file w path;
  w

let test_wal_file_round_trip path =
  Sys.remove path;
  let w = mk_wal () in
  Wal.attach_file w path;
  Alcotest.(check bool) "file-backed" true (Wal.file_backed w);
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "one");
  Wal.log_note w tx "meta" (data "m");
  Wal.commit w tx;
  Wal.control w "ctl" (data "c");
  (* An uncommitted intent may reach the file via a later sync; replay
     must still discard it. *)
  let dead = Wal.begin_tx w in
  Wal.log_page w dead (page 2) (data "ghost");
  Wal.sync w;
  let w' = reload path in
  let r = Wal.replay w' in
  Alcotest.(check (list string)) "reloaded committed ops"
    [ "page:4096:one"; "note:meta:m"; "note:ctl:c" ]
    (payload_strings r);
  Alcotest.(check bool) "ghost discarded" true (r.Wal.discarded >= 1)

let test_wal_file_checkpoint_rewrite path =
  Sys.remove path;
  let w = mk_wal () in
  Wal.attach_file w path;
  for i = 1 to 6 do
    let tx = Wal.begin_tx w in
    Wal.log_page w tx (page i) (data (string_of_int i));
    Wal.commit w tx
  done;
  let size_before = (Unix.stat path).Unix.st_size in
  Wal.checkpoint w (data "SNAP");
  let size_after = (Unix.stat path).Unix.st_size in
  Alcotest.(check bool) "file shrank with the log" true
    (size_after < size_before);
  (* Post-checkpoint appends land after the rewritten log. *)
  Wal.control w "after" (data "x");
  let r = Wal.replay (reload path) in
  Alcotest.(check (option string)) "snapshot survives reload" (Some "SNAP")
    (Option.map Bytes.to_string r.Wal.snapshot);
  Alcotest.(check (list string)) "post-checkpoint op survives"
    [ "note:after:x" ] (payload_strings r)

let test_wal_file_torn_tail_dropped path =
  Sys.remove path;
  let w = mk_wal () in
  Wal.attach_file w path;
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 1) (data "kept");
  Wal.commit w tx;
  (* A SIGKILL mid-append leaves a partial frame: fake one by appending
     half a record by hand. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o600 in
  let junk = Bytes.create 6 in
  Bytes.set_int32_be junk 0 99l;
  ignore (Unix.write fd junk 0 6);
  Unix.close fd;
  let w' = reload path in
  let r = Wal.replay w' in
  Alcotest.(check (list string)) "committed prefix survives the tear"
    [ "page:4096:kept" ] (payload_strings r);
  (* The torn bytes were truncated away: appending now must produce a log
     a third incarnation reads cleanly. *)
  Wal.control w' "post" (data "p");
  let r2 = Wal.replay (reload path) in
  Alcotest.(check (list string)) "clean after truncate + append"
    [ "page:4096:kept"; "note:post:p" ] (payload_strings r2)

let test_wal_file_in_doubt_survives path =
  Sys.remove path;
  let w = mk_wal () in
  Wal.attach_file w path;
  let gtx = Kutil.Txid.make ~coord:3 ~epoch:1 ~seq:7 in
  let tx = Wal.begin_tx w in
  Wal.log_page w tx (page 5) (data "limbo");
  Wal.prepare w tx gtx;
  let r = Wal.replay (reload path) in
  Alcotest.(check int) "one in-doubt transaction" 1
    (List.length r.Wal.in_doubt);
  let gtx', payloads = List.hd r.Wal.in_doubt in
  Alcotest.(check bool) "same global id" true (Kutil.Txid.equal gtx gtx');
  Alcotest.(check int) "its image held, not applied" 1 (List.length payloads);
  Alcotest.(check (list string)) "nothing applied" [] (payload_strings r)

let () =
  Alcotest.run "kstorage"
    [
      ( "page_store",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "read copies" `Quick test_read_returns_copy;
          Alcotest.test_case "miss" `Quick test_miss;
          Alcotest.test_case "ram vs disk latency" `Quick test_ram_latency_vs_disk;
          Alcotest.test_case "eviction to disk" `Quick test_eviction_to_disk;
          Alcotest.test_case "pinning" `Quick test_pinned_not_victimised;
          Alcotest.test_case "evict hook" `Quick test_evict_hook_on_disk_overflow;
          Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
          Alcotest.test_case "immediate ops" `Quick test_immediate_ops;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "crash semantics" `Quick test_crash_loses_ram_keeps_disk;
          Alcotest.test_case "pages listing" `Quick test_pages_listing;
        ] );
      ( "disk_faults",
        [
          Alcotest.test_case "lost unsynced write rolls back" `Quick
            test_lost_unsynced_write_rolls_back;
          Alcotest.test_case "never-synced write vanishes" `Quick
            test_never_synced_write_vanishes;
          Alcotest.test_case "sync barrier protects" `Quick
            test_sync_barrier_protects;
          Alcotest.test_case "torn write never served" `Quick
            test_torn_write_never_served;
          Alcotest.test_case "scrub drops torn frames" `Quick
            test_scrub_drops_torn;
          Alcotest.test_case "crash clears pins" `Quick test_crash_clears_pins;
          Alcotest.test_case "promotion keeps durable copy" `Quick
            test_promotion_keeps_durable_copy;
          Alcotest.test_case "overwrite keeps prior durable" `Quick
            test_overwrite_keeps_prior_durable;
          Alcotest.test_case "flush_immediate single writeback" `Quick
            test_flush_immediate_single_writeback;
        ] );
      ( "wal",
        [
          Alcotest.test_case "commit and replay" `Quick test_wal_commit_replay;
          Alcotest.test_case "replay idempotent" `Quick
            test_wal_replay_idempotent;
          Alcotest.test_case "checkpoint truncates" `Quick
            test_wal_checkpoint_truncates;
          Alcotest.test_case "crash loses unsynced tail" `Quick
            test_wal_crash_loses_unsynced_tail;
          Alcotest.test_case "torn frontier record" `Quick
            test_wal_torn_frontier_record;
          Alcotest.test_case "checkpoint clears torn frontier" `Quick
            test_wal_checkpoint_clears_torn_frontier;
          Alcotest.test_case "crash recounts since_checkpoint" `Quick
            test_wal_crash_recounts_since_checkpoint;
          Alcotest.test_case "crash at every point" `Quick
            test_wal_crash_every_point_sweep;
        ] );
      ( "wal_file",
        [
          Alcotest.test_case "round trip" `Quick
            (with_wal_file test_wal_file_round_trip);
          Alcotest.test_case "checkpoint rewrites" `Quick
            (with_wal_file test_wal_file_checkpoint_rewrite);
          Alcotest.test_case "torn tail dropped" `Quick
            (with_wal_file test_wal_file_torn_tail_dropped);
          Alcotest.test_case "in-doubt survives reload" `Quick
            (with_wal_file test_wal_file_in_doubt_survives);
        ] );
    ]
