(* End-to-end integration tests over a full multi-node Khazana system:
   the paper's client API exercised across clusters. *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr
module Gaddr = Kutil.Gaddr
module Ctypes = Kconsistency.Types

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "daemon error: %s" (Daemon.error_to_string e)

let mk ?(seed = 42) ?(nodes_per_cluster = 3) ?(clusters = 2) () =
  System.create ~seed ~nodes_per_cluster ~clusters ()

let bytes_s = Bytes.of_string

let test_reserve_allocate () =
  let sys = mk () in
  let c = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let region = ok (Client.reserve c 10_000) in
      (* Length rounds up to pages; state starts reserved. *)
      Alcotest.(check int) "rounded" 12288 region.Region.len;
      Alcotest.(check int) "homed here" 1 region.Region.home;
      Alcotest.(check bool) "reserved" true (region.Region.state = Region.Reserved);
      (* Locking before allocation fails. *)
      (match Client.lock c ~addr:region.Region.base ~len:10 Ctypes.Read with
       | Error `Not_allocated -> ()
       | Error e -> Alcotest.failf "wrong error %s" (Daemon.error_to_string e)
       | Ok _ -> Alcotest.fail "lock on unallocated region");
      ok (Client.allocate c region.Region.base);
      match Client.lock c ~addr:region.Region.base ~len:10 Ctypes.Read with
      | Ok ctx -> Client.unlock c ctx
      | Error e -> Alcotest.failf "lock failed: %s" (Daemon.error_to_string e))

let test_write_read_local () =
  let sys = mk () in
  let c = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c 4096) in
      ok (Client.write_bytes c ~addr:r.Region.base (bytes_s "local data"));
      let b = ok (Client.read_bytes c ~addr:r.Region.base 10) in
      Alcotest.(check string) "roundtrip" "local data" (Bytes.to_string b))

let test_unallocated_reads_as_zero () =
  let sys = mk () in
  let c = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c 4096) in
      let b = ok (Client.read_bytes c ~addr:r.Region.base 8) in
      Alcotest.(check string) "zero-filled" (String.make 8 '\000') (Bytes.to_string b))

let test_cross_cluster_sharing () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c1 4096) in
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "from n1"));
      let b = ok (Client.read_bytes c4 ~addr:r.Region.base 7) in
      Alcotest.(check string) "n4 sees n1's write" "from n1" (Bytes.to_string b);
      ok (Client.write_bytes c4 ~addr:r.Region.base (bytes_s "FROM N4"));
      let b = ok (Client.read_bytes c1 ~addr:r.Region.base 7) in
      Alcotest.(check string) "n1 sees n4's write" "FROM N4" (Bytes.to_string b))

let test_multi_page_ops () =
  let sys = mk () in
  let c = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c 16384) in
      (* A write spanning page boundaries. *)
      let addr = Gaddr.add_int r.Region.base 4090 in
      ok (Client.write_bytes c ~addr (bytes_s "spans-a-boundary"));
      let b = ok (Client.read_bytes c ~addr 16) in
      Alcotest.(check string) "boundary write" "spans-a-boundary" (Bytes.to_string b);
      (* Whole-region lock covers all pages. *)
      let ctx = ok (Client.lock c ~addr:r.Region.base ~len:16384 Ctypes.Read) in
      let b = ok (Client.read c ctx ~addr ~len:5) in
      Alcotest.(check string) "read under wide lock" "spans" (Bytes.to_string b);
      Client.unlock c ctx)

let test_lock_modes_enforced () =
  let sys = mk () in
  let c = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c 4096) in
      let ctx = ok (Client.lock c ~addr:r.Region.base ~len:100 Ctypes.Read) in
      (match Client.write c ctx ~addr:r.Region.base (bytes_s "x") with
       | Error `Access_denied -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e)
       | Ok () -> Alcotest.fail "write under read lock");
      Client.unlock c ctx;
      (* Out-of-range access under a valid context. *)
      let ctx = ok (Client.lock c ~addr:r.Region.base ~len:100 Ctypes.Write) in
      (match Client.read c ctx ~addr:(Gaddr.add_int r.Region.base 200) ~len:10 with
       | Error `Bad_range -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e)
       | Ok _ -> Alcotest.fail "read outside context");
      Client.unlock c ctx)

(* A mid-wave acquire failure must roll back the whole multi-page lock:
   pages granted in earlier waves and the failing wave's partial grants
   are all released, and no storage pins leak (pins are only taken once
   the full range is granted). *)
let test_multi_page_lock_rollback () =
  (* Window smaller than the region so the acquisition takes two waves,
     with the blocked page in the second. *)
  let config = { Daemon.default_config with Daemon.acquire_window = 4 } in
  let sys = System.create ~seed:7 ~config ~nodes_per_cluster:3 ~clusters:2 () in
  let owner = System.client sys 1 () in
  let contender = System.client sys 2 () in
  let len = 8 * 4096 in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region owner len) in
      let base = r.Region.base in
      let held = Gaddr.add_int base (6 * 4096) in
      let hold = ok (Client.lock owner ~addr:held ~len:8 Ctypes.Write) in
      (* Whole-region write lock from another node: the first wave's four
         pages are granted, then the second wave hits the held page and the
         deadline expires. *)
      let ctx =
        Ktrace.Op_ctx.make ~deadline:(System.now sys + Ksim.Time.sec 3) 2
      in
      (match Client.lock contender ~ctx ~addr:base ~len Ctypes.Write with
       | Ok _ -> Alcotest.fail "lock must fail while a page is write-held"
       | Error _ -> ());
      Alcotest.(check int) "no pins leaked by the failed lock" 0
        (Kstorage.Page_store.pinned_pages (Daemon.store (System.daemon sys 2)));
      (* The holder is unaffected by the aborted contender. *)
      ok (Client.write owner hold ~addr:held (bytes_s "mine"));
      Client.unlock owner hold;
      (* The partial grants were released: the same full-range lock now
         succeeds and the pin accounting balances again after unlock. *)
      let full = ok (Client.lock contender ~addr:base ~len Ctypes.Write) in
      ok (Client.write contender full ~addr:base (bytes_s "rolled-back-ok"));
      Client.unlock contender full;
      Alcotest.(check int) "no pins live after unlock" 0
        (Kstorage.Page_store.pinned_pages (Daemon.store (System.daemon sys 2)));
      let b = ok (Client.read_bytes contender ~addr:base 14) in
      Alcotest.(check string) "data visible" "rolled-back-ok" (Bytes.to_string b))

let test_access_control () =
  let sys = mk () in
  let owner = System.client sys 1 ~principal:100 () in
  let stranger = System.client sys 2 ~principal:200 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:100 ~world:Attr.Read_only () in
      let r = ok (Client.create_region owner ~attr 4096) in
      ok (Client.write_bytes owner ~addr:r.Region.base (bytes_s "secret"));
      let b = ok (Client.read_bytes stranger ~addr:r.Region.base 6) in
      Alcotest.(check string) "stranger reads" "secret" (Bytes.to_string b);
      match Client.write_bytes stranger ~addr:r.Region.base (bytes_s "EVIL") with
      | Error `Access_denied -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e)
      | Ok () -> Alcotest.fail "stranger wrote a read-only region")

let test_set_attr () =
  let sys = mk () in
  let owner = System.client sys 1 ~principal:100 () in
  let stranger = System.client sys 2 ~principal:200 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:100 ~world:Attr.No_access () in
      let r = ok (Client.create_region owner ~attr 4096) in
      (match Client.read_bytes stranger ~addr:r.Region.base 1 with
       | Error `Access_denied -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e)
       | Ok _ -> Alcotest.fail "no_access readable");
      (* Owner relaxes the ACL; stranger may not. *)
      (match Client.set_attr stranger r.Region.base { attr with Attr.world = Attr.Read_write } with
       | Error `Access_denied -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e)
       | Ok () -> Alcotest.fail "stranger changed attrs");
      ok (Client.set_attr owner r.Region.base { attr with Attr.world = Attr.Read_only });
      let b = ok (Client.read_bytes stranger ~addr:r.Region.base 1) in
      Alcotest.(check int) "readable now" 1 (Bytes.length b))

let test_get_attr () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c5 = System.client sys 5 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:1 ~min_replicas:2 ~level:Attr.Release () in
      let r = ok (Client.create_region c1 ~attr 4096) in
      let a = ok (Client.get_attr c5 r.Region.base) in
      Alcotest.(check string) "protocol visible remotely" "release" a.Attr.protocol;
      Alcotest.(check int) "replicas" 2 a.Attr.min_replicas)

let test_concurrent_writers_serialise () =
  let sys = mk () in
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c2 4096) in
      ok (Client.write_bytes c2 ~addr:r.Region.base (bytes_s "\x00"));
      (* Ten concurrent increment transactions from different nodes: CREW
         locking must make them atomic. *)
      let eng = System.engine sys in
      let fibers =
        List.concat_map
          (fun node ->
            List.init 5 (fun _ ->
                Ksim.Fiber.async eng (fun () ->
                    let c = System.client sys node () in
                    let ctx =
                      ok (Client.lock c ~addr:r.Region.base ~len:1 Ctypes.Write)
                    in
                    let b = ok (Client.read c ctx ~addr:r.Region.base ~len:1) in
                    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) + 1));
                    ok (Client.write c ctx ~addr:r.Region.base b);
                    Client.unlock c ctx)))
          [ 0; 1; 3; 5 ]
      in
      Ksim.Fiber.join_all fibers;
      let b = ok (Client.read_bytes c2 ~addr:r.Region.base 1) in
      Alcotest.(check int) "all increments applied" 20 (Char.code (Bytes.get b 0)))

let test_locality_after_first_access () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c1 4096) in
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "cacheable"));
      let timed f =
        let t0 = System.now sys in
        f ();
        System.now sys - t0
      in
      let cold =
        timed (fun () -> ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 9)))
      in
      let warm =
        timed (fun () -> ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 9)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "warm (%d) ≪ cold (%d)" warm cold)
        true
        (warm * 10 < cold);
      (* And the daemon now physically holds the page. *)
      Alcotest.(check bool) "replica cached locally" true
        (Daemon.holds_page (System.daemon sys 4) r.Region.base))

let test_release_protocol_region () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:1 ~level:Attr.Release () in
      let r = ok (Client.create_region c1 ~attr 4096) in
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "v1"));
      let b = ok (Client.read_bytes c2 ~addr:r.Region.base 2) in
      Alcotest.(check string) "propagated" "v1" (Bytes.to_string b);
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "v2"));
      (* Release consistency: c2 sees v2 after the update propagates. *)
      Ksim.Fiber.sleep (Ksim.Time.sec 1);
      let b = ok (Client.read_bytes c2 ~addr:r.Region.base 2) in
      Alcotest.(check string) "eventually v2" "v2" (Bytes.to_string b))

let test_free_and_unreserve () =
  let sys = mk () in
  let c = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c 4096) in
      ok (Client.write_bytes c ~addr:r.Region.base (bytes_s "doomed"));
      Client.free c r.Region.base;
      Client.unreserve c r.Region.base;
      (* Release-class ops run in the background; give them time. *)
      Ksim.Fiber.sleep (Ksim.Time.sec 2);
      match Client.lock c ~addr:r.Region.base ~len:1 Ctypes.Read with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unreserved region still lockable")

let test_figure1_scenario () =
  (* Figure 1: five nodes; an object physically replicated on nodes 3 and
     5; node 1 accesses it and Khazana locates a copy for it. *)
  let sys = mk ~nodes_per_cluster:6 ~clusters:1 () in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:3 ~min_replicas:2 () in
      let r = ok (Client.create_region c3 ~attr 4096) in
      ok (Client.write_bytes c3 ~addr:r.Region.base (bytes_s "the square object"));
      (* Node 5 reads it, becoming the second replica site. *)
      let c5 = System.client sys 5 () in
      ignore (ok (Client.read_bytes c5 ~addr:r.Region.base 17));
      Alcotest.(check bool) "replicated on 3" true
        (Daemon.holds_page (System.daemon sys 3) r.Region.base);
      Alcotest.(check bool) "replicated on 5" true
        (Daemon.holds_page (System.daemon sys 5) r.Region.base);
      (* Some node has no copy yet (replication is bounded); it accesses
         the address and Khazana locates a copy and serves it. *)
      let accessor =
        List.find
          (fun n -> not (Daemon.holds_page (System.daemon sys n) r.Region.base))
          (List.init 6 Fun.id)
      in
      let c1 = System.client sys accessor () in
      let b = ok (Client.read_bytes c1 ~addr:r.Region.base 17) in
      Alcotest.(check string) "accessor got the data" "the square object"
        (Bytes.to_string b);
      Alcotest.(check bool) "accessor now caches a copy" true
        (Daemon.holds_page (System.daemon sys accessor) r.Region.base))

let test_address_pool_accounting () =
  (* "Khazana daemon processes maintain a pool of locally reserved, but
     unused, address space" (§3.1): many small reserves consume one 1 GiB
     chunk, and consecutive reservations are contiguous within it. *)
  let sys = mk () in
  let c = System.client sys 2 () in
  let d = System.daemon sys 2 in
  System.run_fiber sys (fun () ->
      let r1 = ok (Client.reserve c 4096) in
      let pool_after_first = Daemon.pool_bytes d in
      Alcotest.(check int) "one chunk minus a page"
        (Khazana.Layout.chunk_size - 4096)
        pool_after_first;
      let r2 = ok (Client.reserve c 8192) in
      Alcotest.(check bool) "contiguous from the pool" true
        (Gaddr.equal r2.Region.base (Gaddr.add_int r1.Region.base 4096));
      Alcotest.(check int) "pool shrinks exactly"
        (pool_after_first - 8192)
        (Daemon.pool_bytes d);
      (* A reservation bigger than the remaining pool grabs more chunks. *)
      let r3 = ok (Client.reserve c (2 * Khazana.Layout.chunk_size)) in
      Alcotest.(check bool) "large reserve satisfied" true
        (r3.Region.len = 2 * Khazana.Layout.chunk_size))

let test_deterministic_replay () =
  let run () =
    let sys = mk ~seed:77 () in
    let c1 = System.client sys 1 () in
    let c4 = System.client sys 4 () in
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 8192) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "determinism"));
        ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 11)));
    let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
    (System.now sys, stats.sent, stats.bytes_sent)
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "identical virtual time, message count and bytes" true (a = b)

let test_lookup_path_stats () =
  let sys = mk () in
  let c4 = System.client sys 4 () in
  let d4 = System.daemon sys 4 in
  System.run_fiber sys (fun () ->
      let c1 = System.client sys 1 () in
      let r = ok (Client.create_region c1 4096) in
      Daemon.reset_lookup_stats d4;
      (* First access from n4: full path (directory miss -> cluster miss ->
         map walk). *)
      ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 1));
      let s1 = Daemon.lookup_stats d4 in
      Alcotest.(check bool) "cold lookup walked the tree" true (s1.Daemon.map_walks >= 1);
      (* Second access: region directory hit. *)
      ignore (ok (Client.read_bytes c4 ~addr:r.Region.base 1));
      let s2 = Daemon.lookup_stats d4 in
      Alcotest.(check bool) "warm lookup hits directory" true
        (s2.Daemon.rdir_hits > s1.Daemon.rdir_hits);
      Alcotest.(check int) "no extra walk" s1.Daemon.map_walks s2.Daemon.map_walks)

(* ------------------------------------------------------------------ *)
(* End-to-end tracing: one cross-node operation = one connected trace.  *)
(* ------------------------------------------------------------------ *)

module Trace = Ktrace.Trace

let with_trace_ring f =
  Trace.reset ();
  let ring = Trace.Ring.create () in
  let sink = Trace.Ring.install ring in
  Fun.protect ~finally:(fun () -> Trace.uninstall sink; Trace.reset ())
    (fun () -> f ring)

let test_cross_node_write_is_one_trace () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  (* Region homed at n1; set up untraced. *)
  let r =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "seed"));
        r)
  in
  with_trace_ring @@ fun ring ->
  (* Now trace a single cross-node write from n4: its CREW acquire must
     cross to the home (n1) and back. *)
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c4 ~addr:r.Region.base (bytes_s "traced write")));
  let records = Trace.Ring.records ring in
  let infos = Trace.spans records in
  (* Exactly one root: the client op. *)
  let roots = List.filter (fun s -> s.Trace.span_parent = 0) infos in
  (match roots with
   | [ root ] ->
     Alcotest.(check string) "root is the client op" "client.write_bytes"
       root.Trace.span_name;
     Alcotest.(check int) "root on requester node" 4 root.Trace.span_node;
     let under name =
       List.filter
         (fun s ->
           s.Trace.span_name = name
           && Trace.is_descendant infos ~ancestor:root.Trace.span_id
                s.Trace.span_id)
         infos
     in
     (* Daemon dispatch, location path and CM acquire nest under the op. *)
     Alcotest.(check bool) "daemon.lock under op" true (under "daemon.lock" <> []);
     Alcotest.(check bool) "daemon.locate under op" true (under "daemon.locate" <> []);
     Alcotest.(check bool) "cm.acquire under op" true (under "cm.acquire" <> []);
     (* At least one RPC hop span (CM traffic to the home). *)
     let hops =
       List.filter
         (fun s ->
           String.length s.Trace.span_name >= 4
           && String.sub s.Trace.span_name 0 4 = "rpc."
           && Trace.is_descendant infos ~ancestor:root.Trace.span_id
                s.Trace.span_id)
         infos
     in
     Alcotest.(check bool) "at least one rpc hop" true (hops <> []);
     (* The trace reaches another simulated node: some descendant span or
        event ran on the home (n1). *)
     let visited_nodes =
       List.filter_map
         (fun s ->
           if Trace.is_descendant infos ~ancestor:root.Trace.span_id s.Trace.span_id
           then Some s.Trace.span_node
           else None)
         infos
     in
     Alcotest.(check bool) "trace crosses to the home node" true
       (List.mem 1 visited_nodes);
     (* CM transition events and page-store accesses land in the subtree. *)
     let event_names =
       Trace.events_under records ~ancestor:root.Trace.span_id
       |> List.filter_map (function
            | Trace.Event { name; _ } -> Some name
            | _ -> None)
     in
     Alcotest.(check bool) "cm.transition events" true
       (List.mem "cm.transition" event_names);
     Alcotest.(check bool) "store access events" true
       (List.mem "store.write" event_names)
   | l -> Alcotest.failf "expected exactly one root span, got %d" (List.length l))

let test_cross_node_lock_hop_spans () =
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  let r =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "xx"));
        r)
  in
  with_trace_ring @@ fun ring ->
  System.run_fiber sys (fun () ->
      match Client.lock c4 ~addr:r.Region.base ~len:2 Ctypes.Read with
      | Ok l -> Client.unlock c4 l
      | Error e -> Alcotest.failf "lock: %s" (Daemon.error_to_string e));
  let records = Trace.Ring.records ring in
  let infos = Trace.spans records in
  let root =
    match Trace.find_spans records ~name:"client.lock" with
    | [ s ] -> s
    | l -> Alcotest.failf "%d client.lock roots" (List.length l)
  in
  (* Serve-side spans on remote nodes parent under the requester's hops:
     the home's dispatch of the read request must be in the op subtree. *)
  let serve_spans =
    List.filter
      (fun s ->
        String.length s.Trace.span_name >= 13
        && String.sub s.Trace.span_name 0 13 = "daemon.serve."
        && Trace.is_descendant infos ~ancestor:root.Trace.span_id s.Trace.span_id)
      infos
  in
  Alcotest.(check bool) "remote dispatch under the op" true (serve_spans <> []);
  Alcotest.(check bool) "a dispatch ran on a different node" true
    (List.exists (fun s -> s.Trace.span_node <> 4) serve_spans);
  (* Every span in the stream closed (no leaked spans). *)
  List.iter
    (fun s ->
      if s.Trace.span_finish = None then
        Alcotest.failf "span %s (%d) never finished" s.Trace.span_name
          s.Trace.span_id)
    infos

let test_tracing_disabled_zero_records () =
  (* With no sink installed the same workload emits nothing and behaves
     identically (the deterministic-replay test covers timing; here we
     check the sink side). *)
  Trace.reset ();
  let ring = Trace.Ring.create () in
  (* NOT installed. *)
  let sys = mk () in
  let c1 = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c1 4096) in
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s "dark")));
  Alcotest.(check bool) "tracing off" false (Trace.enabled ());
  Alcotest.(check int) "no records" 0 (Trace.Ring.length ring)

(* ---------------------- MVCC (versioned regions) -------------------- *)

let versioned_attr = Attr.make ~protocol:"versioned" ~owner:1 ()

(* A versioned region created and pre-filled from node 1 (its home). *)
let versioned_region ?(init = "aaaa") sys =
  let c1 = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let r = ok (Client.create_region c1 ~attr:versioned_attr 4096) in
      ok (Client.write_bytes c1 ~addr:r.Region.base (bytes_s init));
      r.Region.base)

let test_mvcc_snapshot_isolation () =
  let sys = mk () in
  let base = versioned_region sys in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let snap = ok (Client.snapshot c4) in
      Alcotest.(check string) "pins at first touch" "aaaa"
        (Bytes.to_string (ok (Client.snapshot_read c4 ~snap ~addr:base 4)));
      ok (Client.write_bytes c1 ~addr:base (bytes_s "bbbb"));
      (* The pinned reader never sees the later version... *)
      Alcotest.(check string) "pin is stable across a publish" "aaaa"
        (Bytes.to_string (ok (Client.snapshot_read c4 ~snap ~addr:base 4)));
      Client.release_snapshot c4 snap;
      (* ...while a fresh snapshot starts at the new latest settled. *)
      let fresh = ok (Client.snapshot c4) in
      Alcotest.(check string) "fresh snapshot sees the publish" "bbbb"
        (Bytes.to_string (ok (Client.snapshot_read c4 ~snap:fresh ~addr:base 4)));
      Client.release_snapshot c4 fresh)

let test_mvcc_readonly_txn_not_blocked () =
  (* The regression this feature exists for: under CREW a read-only
     transaction serializes against any writer; under versioned it reads
     from a snapshot and completes while the write lock is held. *)
  let sys = mk () in
  let base = versioned_region sys in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let lctx = ok (Client.lock c1 ~addr:base ~len:4 Ctypes.Write) in
      ok (Client.write c1 lctx ~addr:base (bytes_s "bbbb"));
      (* With the writer still holding its lock, the read-only txn runs to
         completion — it must neither block nor observe the unpublished
         write. *)
      let v =
        ok
          (Client.txn c4 (fun txn -> Client.txn_read c4 txn ~addr:base ~len:4))
      in
      Alcotest.(check string) "snapshot read, not the in-flight write"
        "aaaa" (Bytes.to_string v);
      Client.unlock c1 lctx);
  System.run_until_quiet sys;
  let c5 = System.client sys 5 () in
  System.run_fiber sys (fun () ->
      Alcotest.(check string) "published after unlock" "bbbb"
        (Bytes.to_string (ok (Client.read_bytes c5 ~addr:base 4))))

let test_mvcc_write_cas () =
  let sys = mk () in
  let base = versioned_region sys in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let v = ok (Client.page_version c4 base) in
      ok (Client.write_cas c4 ~addr:base ~expected:v (bytes_s "cas1"));
      (* The same expected version is now stale: refused, not applied. *)
      (match Client.write_cas c4 ~addr:base ~expected:v (bytes_s "cas2") with
      | Error (`Conflict _) -> ()
      | Ok () -> Alcotest.fail "stale CAS must conflict"
      | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e));
      Alcotest.(check string) "winner's bytes stand" "cas1"
        (Bytes.to_string (ok (Client.read_bytes c4 ~addr:base 4))))

let test_mvcc_txn_read_your_writes () =
  (* A transaction that wrote a versioned range reads its own buffer (the
     locking path), not the snapshot; aborting leaves no trace. *)
  let sys = mk () in
  let base = versioned_region sys in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      (match
         Client.txn c4 (fun txn ->
             let ( let* ) = Result.bind in
             let* () = Client.txn_write c4 txn ~addr:base (bytes_s "mine") in
             let* v = Client.txn_read c4 txn ~addr:base ~len:4 in
             Alcotest.(check string) "own write visible in txn" "mine"
               (Bytes.to_string v);
             Error `Access_denied)
       with
      | Error `Access_denied -> ()
      | Ok () -> Alcotest.fail "body error must abort"
      | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e));
      Alcotest.(check string) "abort left no trace" "aaaa"
        (Bytes.to_string (ok (Client.read_bytes c4 ~addr:base 4))))

let () =
  Alcotest.run "system"
    [
      ( "api",
        [
          Alcotest.test_case "reserve/allocate" `Quick test_reserve_allocate;
          Alcotest.test_case "write/read local" `Quick test_write_read_local;
          Alcotest.test_case "zero fill" `Quick test_unallocated_reads_as_zero;
          Alcotest.test_case "cross-cluster sharing" `Quick test_cross_cluster_sharing;
          Alcotest.test_case "multi-page" `Quick test_multi_page_ops;
          Alcotest.test_case "multi-page rollback" `Quick
            test_multi_page_lock_rollback;
          Alcotest.test_case "lock modes" `Quick test_lock_modes_enforced;
          Alcotest.test_case "access control" `Quick test_access_control;
          Alcotest.test_case "set_attr" `Quick test_set_attr;
          Alcotest.test_case "get_attr remote" `Quick test_get_attr;
          Alcotest.test_case "free/unreserve" `Quick test_free_and_unreserve;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "writers serialise" `Slow test_concurrent_writers_serialise;
          Alcotest.test_case "locality" `Quick test_locality_after_first_access;
          Alcotest.test_case "release protocol" `Quick test_release_protocol_region;
          Alcotest.test_case "figure 1 scenario" `Quick test_figure1_scenario;
          Alcotest.test_case "address pool accounting" `Quick
            test_address_pool_accounting;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "lookup path stats" `Quick test_lookup_path_stats;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "snapshot isolation" `Quick
            test_mvcc_snapshot_isolation;
          Alcotest.test_case "read-only txn not blocked by writer" `Quick
            test_mvcc_readonly_txn_not_blocked;
          Alcotest.test_case "write_cas conflict" `Quick test_mvcc_write_cas;
          Alcotest.test_case "txn read-your-writes" `Quick
            test_mvcc_txn_read_your_writes;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "cross-node write is one trace" `Quick
            test_cross_node_write_is_one_trace;
          Alcotest.test_case "cross-node lock hop spans" `Quick
            test_cross_node_lock_hop_spans;
          Alcotest.test_case "disabled emits nothing" `Quick
            test_tracing_disabled_zero_records;
        ] );
    ]
