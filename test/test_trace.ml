(* Ktrace unit tests: span lifecycle, sinks, analysis helpers, metrics,
   Op_ctx deadlines — plus the Error round-trip. *)

module Trace = Ktrace.Trace
module Op_ctx = Ktrace.Op_ctx
module Metrics = Ktrace.Metrics
module Error = Khazana.Error

(* Every test resets the global sink registry so ordering between tests
   cannot leak state. *)
let with_ring f =
  Trace.reset ();
  let ring = Trace.Ring.create () in
  let sink = Trace.Ring.install ring in
  Fun.protect ~finally:(fun () -> Trace.uninstall sink; Trace.reset ())
    (fun () -> f ring)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_disabled_is_null () =
  Trace.reset ();
  let engine = Ksim.Engine.create () in
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let s = Trace.root ~engine "op" in
  Alcotest.(check bool) "null root" true (Trace.is_null s);
  let c = Trace.child ~engine ~parent:s "inner" in
  Alcotest.(check bool) "null child" true (Trace.is_null c);
  (* All emitters are no-ops without a sink. *)
  Trace.finish ~engine s;
  Trace.event ~engine "ev";
  Alcotest.(check int) "wire id is 0" 0 (Trace.id s)

let test_nesting_and_timestamps () =
  with_ring @@ fun ring ->
  let engine = Ksim.Engine.create () in
  let root = Trace.root ~engine ~node:1 "op" in
  Alcotest.(check bool) "live span" false (Trace.is_null root);
  (* Drive nested spans from fibers so starts/finishes interleave over
     simulated time. *)
  Ksim.Fiber.spawn engine (fun () ->
      Trace.with_span ~engine ~node:1 ~parent:root "phase-a" (fun a ->
          Ksim.Fiber.sleep (Ksim.Time.ms 5);
          Trace.with_span ~engine ~node:2 ~parent:a "phase-a.inner"
            (fun _ -> Ksim.Fiber.sleep (Ksim.Time.ms 3)));
      Trace.with_span ~engine ~node:1 ~parent:root "phase-b" (fun _ ->
          Ksim.Fiber.sleep (Ksim.Time.ms 2)));
  Ksim.Engine.run engine;
  Trace.finish ~engine root;
  let records = Trace.Ring.records ring in
  let infos = Trace.spans records in
  Alcotest.(check int) "four spans" 4 (List.length infos);
  let by_name n =
    match Trace.find_spans records ~name:n with
    | [ s ] -> s
    | l -> Alcotest.failf "%d spans named %s" (List.length l) n
  in
  let a = by_name "phase-a" and inner = by_name "phase-a.inner"
  and b = by_name "phase-b" and r = by_name "op" in
  (* Parentage. *)
  Alcotest.(check int) "a under root" r.Trace.span_id a.Trace.span_parent;
  Alcotest.(check int) "inner under a" a.Trace.span_id inner.Trace.span_parent;
  Alcotest.(check (list int)) "ancestor chain"
    [ a.Trace.span_id; r.Trace.span_id ]
    (Trace.ancestors infos inner.Trace.span_id);
  Alcotest.(check bool) "descendant" true
    (Trace.is_descendant infos ~ancestor:r.Trace.span_id inner.Trace.span_id);
  Alcotest.(check bool) "b not under a" false
    (Trace.is_descendant infos ~ancestor:a.Trace.span_id b.Trace.span_id);
  (* Simulated-time durations. *)
  let dur s =
    match s.Trace.span_finish with
    | Some f -> f - s.Trace.span_start
    | None -> Alcotest.failf "span %s never closed" s.Trace.span_name
  in
  Alcotest.(check int) "a spans 8ms" (Ksim.Time.ms 8) (dur a);
  Alcotest.(check int) "inner spans 3ms" (Ksim.Time.ms 3) (dur inner);
  Alcotest.(check bool) "b starts after a ends" true
    (b.Trace.span_start >= a.Trace.span_start + dur a);
  (* Start order in the stream follows simulated time. *)
  let names = List.map (fun s -> s.Trace.span_name) infos in
  Alcotest.(check (list string)) "start order"
    [ "op"; "phase-a"; "phase-a.inner"; "phase-b" ] names

let test_null_parent_makes_root () =
  with_ring @@ fun ring ->
  let engine = Ksim.Engine.create () in
  let s = Trace.child ~engine ~parent:Trace.null "background-op" in
  Trace.finish ~engine s;
  match Trace.spans (Trace.Ring.records ring) with
  | [ info ] -> Alcotest.(check int) "fresh root" 0 info.Trace.span_parent
  | l -> Alcotest.failf "%d spans" (List.length l)

let test_events_under () =
  with_ring @@ fun ring ->
  let engine = Ksim.Engine.create () in
  let root = Trace.root ~engine "op" in
  let child = Trace.child ~engine ~parent:root "step" in
  Trace.event ~engine ~span:child "deep.event";
  Trace.event ~engine "unattached.event";
  Trace.finish ~engine child;
  Trace.finish ~engine root;
  let records = Trace.Ring.records ring in
  let under =
    Trace.events_under records ~ancestor:(Trace.id root)
    |> List.filter_map (function Trace.Event { name; _ } -> Some name | _ -> None)
  in
  Alcotest.(check (list string)) "subtree events" [ "deep.event" ] under

let test_ring_capacity () =
  Trace.reset ();
  let ring = Trace.Ring.create ~capacity:4 () in
  let sink = Trace.Ring.install ring in
  let engine = Ksim.Engine.create () in
  for i = 0 to 9 do
    Trace.event ~engine ~attrs:[ ("i", string_of_int i) ] "tick"
  done;
  Trace.uninstall sink;
  Trace.reset ();
  let records = Trace.Ring.records ring in
  Alcotest.(check int) "bounded" 4 (List.length records);
  let idx = function
    | Trace.Event { attrs; _ } -> List.assoc "i" attrs
    | _ -> Alcotest.fail "not an event"
  in
  Alcotest.(check (list string)) "keeps newest, oldest first"
    [ "6"; "7"; "8"; "9" ] (List.map idx records)

let test_text_sinks_smoke () =
  Trace.reset ();
  let pretty = Buffer.create 256 and jsonl = Buffer.create 256 in
  let pp = Format.formatter_of_buffer pretty
  and pj = Format.formatter_of_buffer jsonl in
  let s1 = Trace.install (Trace.pretty_sink pp) in
  let s2 = Trace.install (Trace.jsonl_sink pj) in
  let engine = Ksim.Engine.create () in
  Trace.with_span ~engine ~node:3 ~attrs:[ ("k", "v\"q") ] ~parent:Trace.null
    "demo.op" (fun span -> Trace.event ~engine ~span "demo.event");
  Format.pp_print_flush pp ();
  Format.pp_print_flush pj ();
  Trace.uninstall s1;
  Trace.uninstall s2;
  Trace.reset ();
  let p = Buffer.contents pretty and j = Buffer.contents jsonl in
  Alcotest.(check bool) "pretty names the span" true
    (contains p "demo.op");
  Alcotest.(check bool) "jsonl names the event" true
    (contains j "\"demo.event\"");
  (* Three records, one JSON object per line. *)
  let lines = String.split_on_char '\n' (String.trim j) in
  Alcotest.(check int) "jsonl line per record" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_phase_breakdown () =
  with_ring @@ fun ring ->
  let engine = Ksim.Engine.create () in
  Ksim.Fiber.spawn engine (fun () ->
      for _ = 1 to 3 do
        Trace.with_span ~engine ~parent:Trace.null "long" (fun _ ->
            Ksim.Fiber.sleep (Ksim.Time.ms 10))
      done;
      Trace.with_span ~engine ~parent:Trace.null "short" (fun _ ->
          Ksim.Fiber.sleep (Ksim.Time.ms 1)));
  Ksim.Engine.run engine;
  match Trace.phase_breakdown (Trace.Ring.records ring) with
  | [ ("long", 3, long_ms); ("short", 1, short_ms) ] ->
    Alcotest.(check (float 1e-6)) "30ms total" 30.0 long_ms;
    Alcotest.(check (float 1e-6)) "1ms total" 1.0 short_ms
  | l ->
    Alcotest.failf "unexpected breakdown (%d rows)" (List.length l)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "lock.grant";
  Metrics.incr m ~by:2 "lock.grant";
  Metrics.incr m "lock.reject";
  Metrics.observe m "lock.ms" 4.0;
  Metrics.observe m "lock.ms" 6.0;
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("lock.grant", 3); ("lock.reject", 1) ]
    (Metrics.counters m);
  (match Metrics.summaries m with
   | [ ("lock.ms", s) ] ->
     Alcotest.(check (float 1e-6)) "mean" 5.0 (Kutil.Stats.mean s)
   | _ -> Alcotest.fail "summaries");
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (List.length (Metrics.counters m))

let test_op_ctx_deadline () =
  let ctx = Op_ctx.make ~deadline:(Ksim.Time.ms 10) 7 in
  Alcotest.(check int) "principal" 7 (Op_ctx.principal ctx);
  (match Op_ctx.remaining ctx ~now:(Ksim.Time.ms 4) with
   | Some left -> Alcotest.(check int) "6ms left" (Ksim.Time.ms 6) left
   | None -> Alcotest.fail "deadline lost");
  Alcotest.(check bool) "not expired" false
    (Op_ctx.expired ctx ~now:(Ksim.Time.ms 9));
  Alcotest.(check bool) "expired" true
    (Op_ctx.expired ctx ~now:(Ksim.Time.ms 11));
  (* No deadline: never expires. *)
  Alcotest.(check bool) "background unbounded" false
    (Op_ctx.expired Op_ctx.background ~now:max_int);
  (* with_span keeps principal and deadline. *)
  let ctx' = Op_ctx.with_span ctx Trace.null in
  Alcotest.(check int) "with_span principal" 7 (Op_ctx.principal ctx');
  Alcotest.(check (option int)) "with_span deadline"
    (Some (Ksim.Time.ms 10)) (Op_ctx.deadline ctx')

(* Satellite: one error type from one place, total to_string, and a parser
   that inverts it. *)
let test_error_round_trip () =
  let cases : Error.t list =
    [ `Timeout; `Unreachable; `Unavailable "no quorum"; `Access_denied;
      `Not_allocated;
      `Bad_range; `Conflict "overlapping reservation"; `Rpc "bad response" ]
  in
  List.iter
    (fun e ->
      let s = Error.to_string e in
      Alcotest.(check bool) "non-empty rendering" true (String.length s > 0);
      match Error.of_string s with
      | Some e' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" s)
          true (e = e')
      | None -> Alcotest.failf "of_string failed on %S" s)
    cases;
  Alcotest.(check (option string)) "garbage rejected" None
    (Option.map Error.to_string (Error.of_string "definitely not an error"))

let () =
  Alcotest.run "ktrace"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled means null" `Quick test_disabled_is_null;
          Alcotest.test_case "nesting and timestamps" `Quick
            test_nesting_and_timestamps;
          Alcotest.test_case "null parent makes root" `Quick
            test_null_parent_makes_root;
          Alcotest.test_case "events under ancestor" `Quick test_events_under;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
          Alcotest.test_case "text sinks" `Quick test_text_sinks_smoke;
          Alcotest.test_case "phase breakdown" `Quick test_phase_breakdown;
        ] );
      ( "metrics",
        [ Alcotest.test_case "counters and summaries" `Quick test_metrics ] );
      ( "op-ctx",
        [ Alcotest.test_case "deadline arithmetic" `Quick test_op_ctx_deadline ] );
      ( "error",
        [ Alcotest.test_case "string round-trip" `Quick test_error_round_trip ] );
    ]
