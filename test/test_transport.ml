(* Conformance suite for the transport seam: the same assertions run
   against the simulated backend and the Unix-domain-socket backend (all
   endpoints living in this one process, pumped round-robin). Anything a
   daemon relies on — correlation, timeouts, oneway and batch dispatch,
   stats accounting — must hold identically on both. *)

module Time = Ksim.Time
module Topology = Knet.Topology
module Policy = Krpc.Policy

(* A protocol with real byte codecs, so it can ride the socket backend. *)
module Proto = struct
  type request = Echo of string | Silent
  type response = Echoed of string

  let request_size = function
    | Echo s -> 16 + String.length s
    | Silent -> 8

  let response_size (Echoed s) = 16 + String.length s
  let request_kind = function Echo _ -> "echo" | Silent -> "silent"

  module Codec = Kutil.Codec

  let encode_request enc = function
    | Echo s ->
      Codec.u8 enc 0;
      Codec.string enc s
    | Silent -> Codec.u8 enc 1

  let decode_request dec =
    match Codec.read_u8 dec with
    | 0 -> Echo (Codec.read_string dec)
    | 1 -> Silent
    | n -> raise (Codec.Decode_error (Printf.sprintf "Proto.request: %d" n))

  let encode_response enc (Echoed s) = Codec.string enc s
  let decode_response dec = Echoed (Codec.read_string dec)
end

module T = Ktransport.Transport.Make (Proto)
module Sim = Ktransport.Transport_sim.Make (Proto)
module Sockets = Ktransport.Transport_unix.Make (Proto)

(* What the suite needs from a backend under test. Fresh state per test. *)
module type HARNESS = sig
  val name : string

  type h

  val setup : unit -> h
  val teardown : h -> unit
  val transport : h -> node:int -> T.t
  (** The transport value node [node]'s code would hold. One shared value
      under simulation; a per-process endpoint on sockets. *)

  val run : h -> src:int -> (unit -> 'a) -> 'a
  (** Run a fiber on [src]'s engine to completion, driving all nodes. *)

  val settle : h -> unit
  (** Drain in-flight deliveries (oneways have no completion to await). *)

  val timeout : Time.t
  (** A per-attempt timeout comfortably above the backend's delivery
      latency, yet short enough that timeout tests stay quick. *)

  val inject : h -> (Ktransport.Transport.Faults.t -> unit) -> unit
  (** Apply a fault operation at every vantage that has one: once against
      the simulated backend's global network, once per endpoint on
      sockets (where injection is each endpoint's local view). *)
end

module Sim_harness : HARNESS = struct
  let name = "sim"

  type h = { engine : Ksim.Engine.t; transport : T.t }

  let setup () =
    let engine = Ksim.Engine.create ~seed:7 () in
    let topology = Topology.symmetric ~nodes_per_cluster:2 ~clusters:1 in
    let transport, _rpc = Sim.create engine topology in
    { engine; transport }

  let teardown _ = ()
  let transport h ~node:_ = h.transport

  let run h ~src:_ f =
    let p = Ksim.Fiber.async h.engine f in
    Ksim.Engine.run h.engine;
    match Ksim.Promise.peek p with
    | Some v -> v
    | None -> Alcotest.fail "sim: fiber blocked at quiescence"

  let settle h = Ksim.Engine.run h.engine
  let timeout = Time.ms 100

  let inject h f =
    match T.faults h.transport with
    | Some fa -> f fa
    | None -> Alcotest.fail "sim: faults must be available"
end

module Unix_harness = struct
  let name = "unix"

  type h = { dir : string; eps : Sockets.t array }

  let setup () =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ktransport-test-%d-%d" (Unix.getpid ())
           (int_of_float (Unix.gettimeofday () *. 1e6) mod 1_000_000))
    in
    Unix.mkdir dir 0o700;
    let topology = Topology.symmetric ~nodes_per_cluster:2 ~clusters:1 in
    { dir; eps = Array.init 2 (fun id -> Sockets.create ~dir ~id topology) }

  let teardown h =
    Array.iter Sockets.close h.eps;
    (try Unix.rmdir h.dir with Unix.Unix_error _ -> ())

  let transport h ~node = Sockets.pack h.eps.(node)

  let run h ~src f =
    let others =
      Array.to_list h.eps
      |> List.filter (fun e -> Sockets.id e <> src)
    in
    Sockets.run_fiber ~others h.eps.(src) f

  let settle h =
    (* No quiescence signal on real sockets: pump everyone briefly. *)
    let deadline = Unix.gettimeofday () +. 0.3 in
    while Unix.gettimeofday () < deadline do
      Array.iter (fun e -> Sockets.pump ~max_wait:0.01 e) h.eps
    done

  (* Generous: delivery is microseconds, but a loaded CI box can stall a
     process for tens of milliseconds between pumps. *)
  let timeout = Time.sec 2

  let inject h f =
    Array.iter
      (fun e ->
        match T.faults (Sockets.pack e) with
        | Some fa -> f fa
        | None -> Alcotest.fail "unix: faults must be available")
      h.eps
end

(* The functor application below still checks Unix_harness against
   HARNESS; the module itself stays unsealed so socket-only tests can
   reach the raw endpoints. *)
module _ : HARNESS = Unix_harness

module Suite (H : HARNESS) = struct
  let with_h f () =
    let h = H.setup () in
    Fun.protect ~finally:(fun () -> H.teardown h) (fun () -> f h)

  let policy = Policy.with_timeout H.timeout
  let echo_handler ~src:_ ~span:_ req ~reply =
    match req with
    | Proto.Echo s -> reply (Proto.Echoed s)
    | Proto.Silent -> ()

  let test_call_response h =
    T.set_server (H.transport h ~node:1) 1 echo_handler;
    match
      H.run h ~src:0 (fun () ->
          T.call (H.transport h ~node:0) ~src:0 ~dst:1 ~policy (Proto.Echo "hi"))
    with
    | Ok (Proto.Echoed s) -> Alcotest.(check string) "echo" "hi" s
    | Error _ -> Alcotest.fail "call failed"

  (* Ten interleaved calls: every reply must land on its own request. *)
  let test_correlation h =
    T.set_server (H.transport h ~node:1) 1 echo_handler;
    let results =
      H.run h ~src:0 (fun () ->
          let t0 = H.transport h ~node:0 in
          let promises =
            List.init 10 (fun i ->
                Ksim.Fiber.async (T.engine t0) (fun () ->
                    T.call t0 ~src:0 ~dst:1 ~policy
                      (Proto.Echo (string_of_int i))))
          in
          List.mapi
            (fun i p ->
              match Ksim.Fiber.await p with
              | Ok (Proto.Echoed s) -> (i, s)
              | Error _ -> (i, "<error>"))
            promises)
    in
    Alcotest.(check (list (pair int string)))
      "each call got its own answer"
      (List.init 10 (fun i -> (i, string_of_int i)))
      results

  let test_timeout h =
    T.set_server (H.transport h ~node:1) 1 (fun ~src:_ ~span:_ _ ~reply:_ -> ());
    let t0 = H.transport h ~node:0 in
    let r =
      H.run h ~src:0 (fun () ->
          T.call t0 ~src:0 ~dst:1
            ~policy:(Policy.with_timeout (Time.ms 50))
            Proto.Silent)
    in
    Alcotest.(check bool) "timed out" true (r = Error `Timeout);
    Alcotest.(check int) "no leaked pending call" 0 (T.pending_calls t0)

  let test_oneway h =
    let got = ref [] in
    T.set_server (H.transport h ~node:1) 1 (fun ~src ~span:_ req ~reply:_ ->
        match req with
        | Proto.Echo s -> got := (src, s) :: !got
        | Proto.Silent -> ());
    T.notify (H.transport h ~node:0) ~src:0 ~dst:1 (Proto.Echo "oneway");
    H.settle h;
    Alcotest.(check (list (pair int string)))
      "delivered with source" [ (0, "oneway") ] !got

  (* Three same-instant coalescable notifies: one envelope on the wire,
     three separate handler dispatches in send order, three atoms. *)
  let test_batch_dispatch h =
    let got = ref [] in
    T.set_server (H.transport h ~node:1) 1 (fun ~src:_ ~span:_ req ~reply:_ ->
        match req with
        | Proto.Echo s -> got := s :: !got
        | Proto.Silent -> ());
    let t0 = H.transport h ~node:0 in
    let s0 = T.stats t0 in
    H.run h ~src:0 (fun () ->
        T.notify t0 ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "a");
        T.notify t0 ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "b");
        T.notify t0 ~src:0 ~dst:1 ~coalesce:true (Proto.Echo "c"));
    H.settle h;
    let s1 = T.stats t0 in
    Alcotest.(check (list string))
      "all delivered, in send order" [ "a"; "b"; "c" ] (List.rev !got);
    Alcotest.(check int) "one envelope" 1 (s1.Ktransport.Transport.sent - s0.Ktransport.Transport.sent);
    Alcotest.(check int) "three atoms" 3 (s1.Ktransport.Transport.atoms - s0.Ktransport.Transport.atoms)

  let test_stats_accounting h =
    T.set_server (H.transport h ~node:1) 1 echo_handler;
    let t0 = H.transport h ~node:0 in
    T.reset_stats t0;
    ignore
      (H.run h ~src:0 (fun () ->
           T.call t0 ~src:0 ~dst:1 ~policy (Proto.Echo "counted")));
    H.settle h;
    let s = T.stats t0 in
    Alcotest.(check bool) "sent some" true (s.Ktransport.Transport.sent > 0);
    Alcotest.(check bool) "bytes counted" true (s.Ktransport.Transport.bytes_sent > 0);
    (* Conservation. Under simulation the counters are global, so this is
       the network invariant proper; a socket endpoint counts its own
       vantage (sent the request, delivered the response) and the books
       balance here because a call's traffic is symmetric. *)
    Alcotest.(check int) "sent = delivered + dropped + in_flight"
      s.Ktransport.Transport.sent
      (s.Ktransport.Transport.delivered + s.Ktransport.Transport.dropped
       + s.Ktransport.Transport.in_flight);
    Alcotest.(check bool) "echo kind counted" true
      (List.mem_assoc "echo" s.Ktransport.Transport.by_kind)

  (* Fault injection is a seam capability on both backends now; the exact
     error differs (sim frames die silently: [`Timeout]; a socket endpoint
     filters at its own edge and knows: [`Unreachable]) but blocked-then-
     healed behaviour must agree. *)
  let fail_policy = Policy.with_timeout ~attempts:2 (Time.ms 200)

  let test_partition_heal h =
    T.set_server (H.transport h ~node:1) 1 echo_handler;
    let t0 = H.transport h ~node:0 in
    H.inject h (fun f -> f.Ktransport.Transport.Faults.partition [ 0 ] [ 1 ]);
    (match T.faults t0 with
     | Some f ->
       Alcotest.(check bool) "reachable sees the cut" false
         (f.Ktransport.Transport.Faults.reachable 0 1)
     | None -> Alcotest.fail "faults must be available");
    (match
       H.run h ~src:0 (fun () ->
           T.call t0 ~src:0 ~dst:1 ~policy:fail_policy (Proto.Echo "cut"))
     with
     | Error (`Timeout | `Unreachable) -> ()
     | Ok _ -> Alcotest.fail "call crossed a partition");
    H.inject h (fun f -> f.Ktransport.Transport.Faults.heal ());
    match
      H.run h ~src:0 (fun () ->
          T.call t0 ~src:0 ~dst:1 ~policy (Proto.Echo "healed"))
    with
    | Ok (Proto.Echoed s) -> Alcotest.(check string) "healed" "healed" s
    | Error _ -> Alcotest.fail "call failed after heal"

  let test_crash_recover h =
    T.set_server (H.transport h ~node:1) 1 echo_handler;
    let t0 = H.transport h ~node:0 in
    H.inject h (fun f -> f.Ktransport.Transport.Faults.crash 1);
    (match T.faults t0 with
     | Some f ->
       Alcotest.(check bool) "is_up sees the crash" false
         (f.Ktransport.Transport.Faults.is_up 1)
     | None -> Alcotest.fail "faults must be available");
    (match
       H.run h ~src:0 (fun () ->
           T.call t0 ~src:0 ~dst:1 ~policy:fail_policy (Proto.Echo "down"))
     with
     | Error (`Timeout | `Unreachable) -> ()
     | Ok _ -> Alcotest.fail "call reached a crashed node");
    H.inject h (fun f -> f.Ktransport.Transport.Faults.recover 1);
    match
      H.run h ~src:0 (fun () ->
          T.call t0 ~src:0 ~dst:1 ~policy (Proto.Echo "back"))
    with
    | Ok (Proto.Echoed s) -> Alcotest.(check string) "recovered" "back" s
    | Error _ -> Alcotest.fail "call failed after recovery"

  let cases =
    [
      Alcotest.test_case "call/response" `Quick (with_h test_call_response);
      Alcotest.test_case "correlation" `Quick (with_h test_correlation);
      Alcotest.test_case "timeout" `Quick (with_h test_timeout);
      Alcotest.test_case "oneway" `Quick (with_h test_oneway);
      Alcotest.test_case "batch dispatch" `Quick (with_h test_batch_dispatch);
      Alcotest.test_case "stats accounting" `Quick (with_h test_stats_accounting);
      Alcotest.test_case "partition/heal" `Quick (with_h test_partition_heal);
      Alcotest.test_case "crash/recover" `Quick (with_h test_crash_recover);
    ]
end

module Sim_suite = Suite (Sim_harness)
module Unix_suite = Suite (Unix_harness)

(* Socket-only behaviours: genuine peer loss (not injected — the process
   at the far end is really gone) and the seeded frame shim. These reach
   the raw endpoints, so they live outside the backend-generic suite. *)
module Unix_only = struct
  module H = Unix_harness

  let with_h f () =
    let h = H.setup () in
    Fun.protect ~finally:(fun () -> H.teardown h) (fun () -> f h)

  let policy = Policy.with_timeout H.timeout
  let echo_handler ~src:_ ~span:_ req ~reply =
    match req with
    | Proto.Echo s -> reply (Proto.Echoed s)
    | Proto.Silent -> ()

  let set_server_raw ep h = T.set_server (Sockets.pack ep) (Sockets.id ep) h

  let call_ok h msg =
    match
      H.run h ~src:0 (fun () ->
          T.call (H.transport h ~node:0) ~src:0 ~dst:1 ~policy
            (Proto.Echo msg))
    with
    | Ok (Proto.Echoed s) -> Alcotest.(check string) "echo" msg s
    | Error `Timeout -> Alcotest.fail "unexpected timeout"
    | Error `Unreachable -> Alcotest.fail "unexpected unreachable"

  (* Satellite regression: a peer that vanished must read as positive
     evidence ([`Unreachable], counted dropped), the dead cached
     connection must be evicted, and a rebind of the same id must make
     the pair whole again without restarting the caller. *)
  let test_peer_vanished_then_rebind h =
    set_server_raw h.H.eps.(1) echo_handler;
    call_ok h "before";
    let d0 = (T.stats (H.transport h ~node:0)).Ktransport.Transport.dropped in
    Sockets.close h.H.eps.(1);
    (* the peer is gone: drive node 0 alone (a closed endpoint can't pump) *)
    (match
       Sockets.run_fiber h.H.eps.(0) (fun () ->
           T.call (H.transport h ~node:0) ~src:0 ~dst:1
             ~policy:(Policy.with_timeout ~attempts:2 (Time.ms 200))
             (Proto.Echo "void"))
     with
     | Error `Unreachable -> ()
     | Error `Timeout -> Alcotest.fail "dead peer must be unreachable, not silent"
     | Ok _ -> Alcotest.fail "call reached a closed endpoint");
    let d1 = (T.stats (H.transport h ~node:0)).Ktransport.Transport.dropped in
    Alcotest.(check bool) "frames to the dead peer counted dropped" true
      (d1 > d0);
    (* Same id, same socket path: the peer is back. The caller's re-dial
       is backoff-gated, so allow the default several attempts. *)
    h.H.eps.(1) <-
      Sockets.create ~dir:h.H.dir ~id:1
        (Topology.symmetric ~nodes_per_cluster:2 ~clusters:1);
    set_server_raw h.H.eps.(1) echo_handler;
    match
      H.run h ~src:0 (fun () ->
          T.call (H.transport h ~node:0) ~src:0 ~dst:1
            ~policy:(Policy.with_timeout ~attempts:8 (Time.ms 500))
            (Proto.Echo "rebound"))
    with
    | Ok (Proto.Echoed s) -> Alcotest.(check string) "rebound" "rebound" s
    | Error _ -> Alcotest.fail "call failed after peer rebind"

  (* [sever] alone (connections torn, peer alive) must heal on the next
     send: re-dial, not a permanent EPIPE. *)
  let test_sever_reconnects h =
    set_server_raw h.H.eps.(1) echo_handler;
    call_ok h "first";
    Sockets.sever h.H.eps.(0) 1;
    Sockets.sever h.H.eps.(1) 0;
    call_ok h "second"

  (* drop = 1.0: every request frame dies in flight. That is silence
     ([`Timeout]), not positive evidence, and it counts in [dropped]. *)
  let test_frame_drop h =
    set_server_raw h.H.eps.(1) echo_handler;
    Sockets.set_frame_faults h.H.eps.(0) ~seed:11 ~drop:1.0 ();
    let d0 = (T.stats (H.transport h ~node:0)).Ktransport.Transport.dropped in
    (match
       H.run h ~src:0 (fun () ->
           T.call (H.transport h ~node:0) ~src:0 ~dst:1
             ~policy:(Policy.with_timeout ~attempts:2 (Time.ms 150))
             (Proto.Echo "lost"))
     with
     | Error `Timeout -> ()
     | Error `Unreachable ->
       Alcotest.fail "shim loss must look like silence, not refusal"
     | Ok _ -> Alcotest.fail "dropped frame was delivered");
    let d1 = (T.stats (H.transport h ~node:0)).Ktransport.Transport.dropped in
    Alcotest.(check int) "both attempts' frames counted dropped" (d0 + 2) d1;
    Sockets.clear_frame_faults h.H.eps.(0);
    call_ok h "clear"

  (* duplicate = 1.0 on a oneway: the frame rides the wire twice and the
     handler runs twice — exactly the duplication [Policy.idempotent]
     exists to tolerate. *)
  let test_frame_duplicate h =
    let got = ref 0 in
    set_server_raw h.H.eps.(1)
      (fun ~src:_ ~span:_ req ~reply:_ ->
        match req with Proto.Echo _ -> incr got | Proto.Silent -> ());
    Sockets.set_frame_faults h.H.eps.(0) ~seed:12 ~duplicate:1.0 ();
    T.notify (H.transport h ~node:0) ~src:0 ~dst:1 (Proto.Echo "twice");
    H.settle h;
    Alcotest.(check int) "handler ran once per wire copy" 2 !got

  (* delay > 0 routes sends through the deferred path; the frame must
     still arrive. *)
  let test_frame_delay h =
    set_server_raw h.H.eps.(1) echo_handler;
    Sockets.set_frame_faults h.H.eps.(0) ~seed:13 ~delay:0.05 ();
    Sockets.set_frame_faults h.H.eps.(1) ~seed:14 ~delay:0.05 ();
    call_ok h "late"

  (* A peer that dies in the middle of a multi-destination fan-out must
     surface as [`Unreachable] on its own call only: the caller's
     endpoint stays whole and the remaining destinations keep answering.
     This is the transport face of the 2PC decide broadcast — one dead
     participant cannot wedge delivery to the others. Needs three real
     endpoints, so it builds its own fleet instead of [with_h]. *)
  let test_unreachable_mid_fanout () =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ktransport-fanout-%d-%d" (Unix.getpid ())
           (int_of_float (Unix.gettimeofday () *. 1e6) mod 1_000_000))
    in
    Unix.mkdir dir 0o700;
    let topology = Topology.symmetric ~nodes_per_cluster:3 ~clusters:1 in
    let eps = Array.init 3 (fun id -> Sockets.create ~dir ~id topology) in
    Fun.protect
      ~finally:(fun () ->
        Array.iter Sockets.close eps;
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () ->
        set_server_raw eps.(1) echo_handler;
        set_server_raw eps.(2) echo_handler;
        let t0 = Sockets.pack eps.(0) in
        let call ~others ~attempts dst msg =
          Sockets.run_fiber ~others eps.(0) (fun () ->
              T.call t0 ~src:0 ~dst
                ~policy:(Policy.with_timeout ~attempts (Time.ms 300))
                (Proto.Echo msg))
        in
        let expect_ok ~others dst msg =
          match call ~others ~attempts:8 dst msg with
          | Ok (Proto.Echoed s) -> Alcotest.(check string) "echo" msg s
          | Error _ -> Alcotest.failf "call to node %d failed" dst
        in
        expect_ok ~others:[ eps.(1); eps.(2) ] 1 "warm-1";
        expect_ok ~others:[ eps.(1); eps.(2) ] 2 "warm-2";
        (* Node 2 really dies — its socket closes and unlinks, no
           injected flag. The next call to it must be positive evidence,
           and node 1 must be entirely unaffected. *)
        Sockets.close eps.(2);
        (match call ~others:[ eps.(1) ] ~attempts:2 2 "void" with
         | Error `Unreachable -> ()
         | Error `Timeout ->
           Alcotest.fail "dead fan-out leg must be unreachable, not silent"
         | Ok _ -> Alcotest.fail "call reached a closed endpoint");
        expect_ok ~others:[ eps.(1) ] 1 "survivor")

  let cases =
    [
      Alcotest.test_case "peer vanished, then rebind" `Quick
        (with_h test_peer_vanished_then_rebind);
      Alcotest.test_case "sever reconnects" `Quick (with_h test_sever_reconnects);
      Alcotest.test_case "unreachable mid-fanout" `Quick
        (fun () -> test_unreachable_mid_fanout ());
      Alcotest.test_case "frame drop" `Quick (with_h test_frame_drop);
      Alcotest.test_case "frame duplicate" `Quick (with_h test_frame_duplicate);
      Alcotest.test_case "frame delay" `Quick (with_h test_frame_delay);
    ]
end

let () =
  Alcotest.run "ktransport"
    [
      ("conformance:" ^ Sim_harness.name, Sim_suite.cases);
      ("conformance:" ^ Unix_harness.name, Unix_suite.cases);
      ("sockets", Unix_only.cases);
    ]
