(* Distributed atomic transactions: 2PC over the WAL.

   Unit level: prepare/decide records drive replay classification
   (committed applies, aborted drops, undecided surfaces in limbo) and
   survive checkpoint truncation. System level: a transaction spanning
   regions homed at different nodes commits atomically, aborts leave no
   trace, duplicate decision delivery is a no-op, and an in-doubt
   participant resolves through the coordinator (presumed abort). *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Wire = Khazana.Wire
module Wal = Kstorage.Wal
module Gaddr = Kutil.Gaddr
module Txid = Kutil.Txid
module Metrics = Ktrace.Metrics
module Trace = Ktrace.Trace

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "daemon error: %s" (Daemon.error_to_string e)

let bytes_s = Bytes.of_string
let page n = Gaddr.of_int (n * 4096)
let counter d name =
  Option.value ~default:0
    (List.assoc_opt name (Metrics.counters (Daemon.metrics d)))

(* ------------------------------------------------------------------ *)
(* WAL unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let mk_wal ?config () = Wal.create ?config ~rng:(Kutil.Rng.create ~seed:7) ()

let gtx_a = Txid.make ~coord:3 ~epoch:1 ~seq:0
let gtx_b = Txid.make ~coord:3 ~epoch:1 ~seq:1

let prepare_pages w gtx pages =
  let tx = Wal.begin_tx w in
  List.iter (fun (p, img) -> Wal.log_page w tx p img) pages;
  Wal.prepare w tx gtx

let test_wal_prepare_decide_replay () =
  let w = mk_wal () in
  (* One prepared-committed, one prepared-aborted, one prepared-undecided. *)
  prepare_pages w gtx_a [ (page 1, bytes_s "commit-me") ];
  Wal.decide w gtx_a ~commit:true ~participants:[];
  prepare_pages w gtx_b [ (page 2, bytes_s "abort-me") ];
  Wal.decide w gtx_b ~commit:false ~participants:[];
  let gtx_c = Txid.make ~coord:4 ~epoch:2 ~seq:9 in
  prepare_pages w gtx_c [ (page 3, bytes_s "limbo") ];
  Wal.crash w;
  let r = Wal.replay w in
  let applied =
    List.filter_map
      (function Wal.Page (p, _) -> Some p | Wal.Note _ -> None)
      r.Wal.ops
  in
  Alcotest.(check bool) "committed image applies" true
    (List.exists (Gaddr.equal (page 1)) applied);
  Alcotest.(check bool) "aborted image dropped" false
    (List.exists (Gaddr.equal (page 2)) applied);
  Alcotest.(check bool) "undecided image not applied" false
    (List.exists (Gaddr.equal (page 3)) applied);
  (match r.Wal.in_doubt with
   | [ (g, [ Wal.Page (p, img) ]) ] ->
     Alcotest.(check bool) "in-doubt id" true (Txid.equal g gtx_c);
     Alcotest.(check bool) "in-doubt page" true (Gaddr.equal p (page 3));
     Alcotest.(check string) "in-doubt image" "limbo" (Bytes.to_string img)
   | _ -> Alcotest.fail "expected exactly one in-doubt transaction");
  (* Decision records surface, in log order, with participants. *)
  Alcotest.(check int) "two decisions" 2 (List.length r.Wal.decisions)

let test_wal_checkpoint_carries_in_doubt () =
  let w = mk_wal () in
  prepare_pages w gtx_a [ (page 1, bytes_s "settled") ];
  Wal.decide w gtx_a ~commit:true ~participants:[];
  let gtx_c = Txid.make ~coord:4 ~epoch:2 ~seq:9 in
  prepare_pages w gtx_c [ (page 3, bytes_s "limbo") ];
  (* The checkpoint asserts the disk tier holds everything decided — but
     the undecided transaction's image lives only in the log and must ride
     across the truncation. *)
  Wal.checkpoint w (bytes_s "snap");
  Wal.crash w;
  let r = Wal.replay w in
  Alcotest.(check (option string)) "snapshot survives" (Some "snap")
    (Option.map Bytes.to_string r.Wal.snapshot);
  Alcotest.(check bool) "decided tx truncated" true
    (List.for_all
       (function Wal.Page (p, _) -> not (Gaddr.equal p (page 1)) | _ -> true)
       r.Wal.ops);
  (match r.Wal.in_doubt with
   | [ (g, _) ] ->
     Alcotest.(check bool) "in-doubt carried over" true (Txid.equal g gtx_c)
   | _ -> Alcotest.fail "in-doubt transaction lost by checkpoint");
  (* A decision arriving after the checkpoint settles it. *)
  Wal.decide w gtx_c ~commit:true ~participants:[];
  Wal.crash w;
  let r2 = Wal.replay w in
  Alcotest.(check int) "limbo emptied" 0 (List.length r2.Wal.in_doubt);
  Alcotest.(check bool) "late-decided image applies" true
    (List.exists
       (function Wal.Page (p, _) -> Gaddr.equal p (page 3) | _ -> false)
       r2.Wal.ops)

(* ------------------------------------------------------------------ *)
(* System-level transactions                                           *)
(* ------------------------------------------------------------------ *)

let mk ?(seed = 42) () = System.create ~seed ~nodes_per_cluster:6 ~clusters:1 ()

(* Two regions homed at different nodes (created from their own clients),
   pre-filled with "old-". *)
let two_regions sys =
  let c1 = System.client sys 1 () in
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let ra = ok (Client.create_region c1 4096) in
      let rb = ok (Client.create_region c2 4096) in
      ok (Client.write_bytes c1 ~addr:ra.Region.base (bytes_s "old-a"));
      ok (Client.write_bytes c2 ~addr:rb.Region.base (bytes_s "old-b"));
      (ra.Region.base, rb.Region.base))

let read_pair sys node a b =
  let c = System.client sys node () in
  System.run_fiber sys (fun () ->
      let va = Bytes.to_string (ok (Client.read_bytes c ~addr:a 5)) in
      let vb = Bytes.to_string (ok (Client.read_bytes c ~addr:b 5)) in
      (va, vb))

let test_cross_node_commit () =
  let sys = mk () in
  let a, b = two_regions sys in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      ok
        (Client.txn c3 (fun txn ->
             let ( let* ) = Result.bind in
             let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
             Client.txn_write c3 txn ~addr:b (bytes_s "new-b"))));
  System.run_until_quiet sys;
  (* A fourth node sees both updates. *)
  let va, vb = read_pair sys 4 a b in
  Alcotest.(check string) "region a committed" "new-a" va;
  Alcotest.(check string) "region b committed" "new-b" vb;
  Alcotest.(check bool) "coordinator logged a commit" true
    (counter (System.daemon sys 3) "txn.commit" >= 1);
  (* The decision broadcast drains: nobody is left in doubt. *)
  List.iter
    (fun d ->
      Alcotest.(check int) "no prepared leftovers" 0
        (Daemon.txn_prepared_count d))
    (System.daemons sys)

let test_abort_leaves_no_trace () =
  let sys = mk () in
  let a, b = two_regions sys in
  let c3 = System.client sys 3 () in
  let r =
    System.run_fiber sys (fun () ->
        Client.txn c3 (fun txn ->
            let ( let* ) = Result.bind in
            let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
            let* () = Client.txn_write c3 txn ~addr:b (bytes_s "new-b") in
            Error `Access_denied))
  in
  (match r with
   | Error `Access_denied -> ()
   | Ok () -> Alcotest.fail "body error must abort"
   | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e));
  System.run_until_quiet sys;
  let va, vb = read_pair sys 4 a b in
  Alcotest.(check string) "region a untouched" "old-a" va;
  Alcotest.(check string) "region b untouched" "old-b" vb

let test_read_your_writes () =
  let sys = mk () in
  let a, b = two_regions sys in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      ok
        (Client.txn c3 (fun txn ->
             let ( let* ) = Result.bind in
             (* Outside writes invisible, own writes visible, layered. *)
             let* v0 = Client.txn_read c3 txn ~addr:a ~len:5 in
             Alcotest.(check string) "pre-write read" "old-a"
               (Bytes.to_string v0);
             let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
             let* () =
               Client.txn_write c3 txn ~addr:(Gaddr.add_int a 4) (bytes_s "X")
             in
             let* v1 = Client.txn_read c3 txn ~addr:a ~len:5 in
             Alcotest.(check string) "buffered writes overlay, newest wins"
               "new-X" (Bytes.to_string v1);
             let* v2 = Client.txn_read c3 txn ~addr:b ~len:5 in
             Alcotest.(check string) "other region unbuffered" "old-b"
               (Bytes.to_string v2);
             Ok ())));
  System.run_until_quiet sys;
  let va, _ = read_pair sys 4 a b in
  Alcotest.(check string) "commit made overlay durable" "new-X" va

let test_empty_txn_commits () =
  let sys = mk () in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      ok (Client.txn c3 (fun _txn -> Ok ())))

let test_duplicate_decide_is_noop () =
  let sys = mk () in
  let a, b = two_regions sys in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      ok
        (Client.txn c3 (fun txn ->
             let ( let* ) = Result.bind in
             let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
             Client.txn_write c3 txn ~addr:b (bytes_s "new-b"))));
  System.run_until_quiet sys;
  let gtx =
    match Daemon.last_txid (System.daemon sys 3) with
    | Some g -> g
    | None -> Alcotest.fail "coordinator minted no txid"
  in
  (* Replay the decision straight at participant 1, twice. The [Policy.
     idempotent] preset exists exactly because delivery may duplicate. *)
  let redeliver () =
    System.run_fiber sys (fun () ->
        match
          Wire.Transport.call (System.transport sys) ~src:3 ~dst:1
            ~policy:Wire.Policy.idempotent ~span:0
            (Wire.Tx_decide { gtx; commit = true })
        with
        | Ok Wire.R_unit -> ()
        | Ok _ -> Alcotest.fail "unexpected response"
        | Error _ -> Alcotest.fail "duplicate decide failed")
  in
  redeliver ();
  redeliver ();
  System.run_until_quiet sys;
  let d1 = System.daemon sys 1 in
  Alcotest.(check bool) "duplicates counted as such" true
    (counter d1 "txn.decide.dup" >= 2);
  Alcotest.(check int) "decision applied exactly once" 1
    (counter d1 "txn.decide.commit");
  let va, vb = read_pair sys 4 a b in
  Alcotest.(check string) "data unchanged by duplicates" "new-a" va;
  Alcotest.(check string) "data unchanged by duplicates" "new-b" vb

let test_status_presumed_abort () =
  let sys = mk () in
  let _ = two_regions sys in
  (* Ask node 3 (a would-be coordinator) about a transaction it never
     heard of: presumed abort says "aborted", never "maybe". *)
  let unknown = Txid.make ~coord:3 ~epoch:1 ~seq:99 in
  System.run_fiber sys (fun () ->
      match
        Wire.Transport.call (System.transport sys) ~src:4 ~dst:3
          ~policy:Wire.Policy.idempotent ~span:0
          (Wire.Tx_status { gtx = unknown })
      with
      | Ok (Wire.R_tx_status Wire.Tx_aborted) -> ()
      | Ok (Wire.R_tx_status _) -> Alcotest.fail "unknown txid must read aborted"
      | Ok _ -> Alcotest.fail "unexpected response"
      | Error _ -> Alcotest.fail "status query failed")

let test_in_doubt_resolves_after_coordinator_crash () =
  let sys = mk () in
  let a, b = two_regions sys in
  let d3 = System.daemon sys 3 in
  let c3 = System.client sys 3 () in
  (* Crash the coordinator the moment every participant has voted yes —
     before the decision is logged. Participants 1 and 2 are left prepared
     and in doubt. *)
  Daemon.set_txn_hook d3
    (Some (fun step -> if step = "coord.all_acked" then System.crash sys 3));
  let r =
    System.run_fiber sys (fun () ->
        Client.txn c3 (fun txn ->
            let ( let* ) = Result.bind in
            let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
            Client.txn_write c3 txn ~addr:b (bytes_s "new-b")))
  in
  Daemon.set_txn_hook d3 None;
  (match r with
   | Error (`Unavailable _) -> ()
   | Ok () -> Alcotest.fail "commit claimed without a logged decision"
   | Error e -> Alcotest.failf "wrong error: %s" (Daemon.error_to_string e));
  Alcotest.(check bool) "participants left in doubt" true
    (Daemon.txn_prepared_count (System.daemon sys 1) = 1
     || Daemon.txn_prepared_count (System.daemon sys 2) = 1);
  System.recover sys 3;
  (* Resolver nag fires after txn_resolve_after (3 s) and the recovered
     coordinator — which has no decision on record — answers aborted. *)
  System.run_until_quiet sys ~limit:(Ksim.Time.sec 30);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "node %d limbo drained" n)
        0
        (Daemon.txn_prepared_count (System.daemon sys n)))
    [ 1; 2 ];
  let va, vb = read_pair sys 4 a b in
  Alcotest.(check string) "region a rolled back" "old-a" va;
  Alcotest.(check string) "region b rolled back" "old-b" vb

let test_trace_reconstructs_transaction () =
  Trace.reset ();
  let ring = Trace.Ring.create () in
  let sink = Trace.Ring.install ring in
  Fun.protect ~finally:(fun () -> Trace.uninstall sink) @@ fun () ->
  let sys = mk () in
  let a, b = two_regions sys in
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      ok
        (Client.txn c3 (fun txn ->
             let ( let* ) = Result.bind in
             let* () = Client.txn_write c3 txn ~addr:a (bytes_s "new-a") in
             Client.txn_write c3 txn ~addr:b (bytes_s "new-b"))));
  System.run_until_quiet sys;
  let gtx =
    match Daemon.last_txid (System.daemon sys 3) with
    | Some g -> Txid.to_string g
    | None -> Alcotest.fail "no txid"
  in
  let events =
    List.filter_map
      (function
        | Trace.Event { name; node; attrs; _ }
          when List.assoc_opt "txid" attrs = Some gtx -> Some (name, node)
        | _ -> None)
      (Trace.Ring.records ring)
  in
  let nodes_of name =
    List.sort_uniq compare
      (List.filter_map (fun (n, node) -> if n = name then Some node else None)
         events)
  in
  (* The transaction reconstructs from the sink: prepares at both
     participant homes, decisions at participants and coordinator. *)
  Alcotest.(check (list int)) "prepares at both homes" [ 1; 2 ]
    (nodes_of "txn.prepare");
  Alcotest.(check bool) "coordinator logged its decision" true
    (List.mem 3 (nodes_of "txn.decide"));
  Alcotest.(check bool) "participants applied the decision" true
    (List.mem 1 (nodes_of "txn.decide") && List.mem 2 (nodes_of "txn.decide"))

let test_kfs_rename_is_atomic () =
  (* Cross-directory rename rides Client.txn: directories created from
     different nodes live in regions with different homes, and the rename
     commits atomically across them. *)
  let sys = mk () in
  let c1 = System.client sys 1 () in
  let sb =
    System.run_fiber sys (fun () ->
        match Kfs.Fs.format c1 () with
        | Ok sb -> sb
        | Error e -> Alcotest.failf "format: %s" (Kfs.Fs.error_to_string e))
  in
  let fs_ok = function
    | Ok v -> v
    | Error e -> Alcotest.failf "kfs: %s" (Kfs.Fs.error_to_string e)
  in
  System.run_fiber sys (fun () ->
      let fs1 = fs_ok (Kfs.Fs.mount c1 sb) in
      fs_ok (Kfs.Fs.mkdir fs1 "/src");
      fs_ok (Kfs.Fs.create fs1 "/src/f");
      fs_ok (Kfs.Fs.write fs1 "/src/f" ~off:0 (bytes_s "payload")));
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      let fs2 = fs_ok (Kfs.Fs.mount c2 sb) in
      fs_ok (Kfs.Fs.mkdir fs2 "/dst"));
  let c3 = System.client sys 3 () in
  System.run_fiber sys (fun () ->
      let fs3 = fs_ok (Kfs.Fs.mount c3 sb) in
      fs_ok (Kfs.Fs.rename fs3 "/src/f" "/dst/g"));
  System.run_until_quiet sys;
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let fs4 = fs_ok (Kfs.Fs.mount c4 sb) in
      Alcotest.(check bool) "gone from src" false (Kfs.Fs.exists fs4 "/src/f");
      Alcotest.(check bool) "present at dst" true (Kfs.Fs.exists fs4 "/dst/g");
      let data = fs_ok (Kfs.Fs.read fs4 "/dst/g" ~off:0 ~len:7) in
      Alcotest.(check string) "content intact" "payload" (Bytes.to_string data))

let () =
  Alcotest.run "txn"
    [
      ( "wal",
        [
          Alcotest.test_case "prepare/decide replay" `Quick
            test_wal_prepare_decide_replay;
          Alcotest.test_case "checkpoint carries in-doubt" `Quick
            test_wal_checkpoint_carries_in_doubt;
        ] );
      ( "commit",
        [
          Alcotest.test_case "cross-node atomic commit" `Quick
            test_cross_node_commit;
          Alcotest.test_case "abort leaves no trace" `Quick
            test_abort_leaves_no_trace;
          Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
          Alcotest.test_case "empty txn commits" `Quick test_empty_txn_commits;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "duplicate decide is a no-op" `Quick
            test_duplicate_decide_is_noop;
          Alcotest.test_case "unknown txid reads aborted" `Quick
            test_status_presumed_abort;
          Alcotest.test_case "in-doubt resolves after coordinator crash"
            `Quick test_in_doubt_resolves_after_coordinator_crash;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace reconstructs a transaction" `Quick
            test_trace_reconstructs_transaction;
          Alcotest.test_case "kfs rename is atomic" `Quick
            test_kfs_rename_is_atomic;
        ] );
    ]
